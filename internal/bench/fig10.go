package bench

import (
	"fmt"

	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/workload"
)

// settingSources builds per-source generators for one Fig. 10 rate setting,
// scaling the paper's absolute rates (up to 50k items/s per sub-stream)
// down to the bench scale while preserving the A:B:C:D ratios exactly.
func settingSources(setting workload.RateSetting, gaussian bool, scale Scale, sources int) sourceFunc {
	var sum float64
	for _, r := range setting.Rates {
		sum += r
	}
	// Total across sub-streams matches 4 × RatePerSubstream.
	rateScale := 4 * scale.RatePerSubstream / sum / float64(sources)
	return func(seed uint64) func(i int) workload.Source {
		return func(i int) workload.Source {
			if gaussian {
				return workload.GaussianSetting(seed+uint64(i)*211, setting, rateScale)
			}
			return workload.PoissonSetting(seed+uint64(i)*211, setting, rateScale)
		}
	}
}

// fig10 runs the fluctuating-rate comparison for one distribution family.
func fig10(id, title string, gaussian bool, scale Scale) (Figure, error) {
	fig := Figure{
		ID:     id,
		Title:  title,
		XLabel: "setting",
		YLabel: "accuracy loss (%)",
		Series: []Series{{Label: "ApproxIoT"}, {Label: "SRS"}},
		Notes:  "60% sampling fraction; x = Setting1..3 (A:B:C:D arrival-rate mixes)",
	}
	sources := topology.Testbed().Sources
	for idx, setting := range workload.Settings() {
		src := settingSources(setting, gaussian, scale, sources)
		whs, err := meanAccuracyLossPct(sysWHS, 0.6, src, scale)
		if err != nil {
			return fig, fmt.Errorf("bench: fig%s %s: %w", id, setting.Name, err)
		}
		srs, err := meanAccuracyLossPct(sysSRS, 0.6, src, scale)
		if err != nil {
			return fig, fmt.Errorf("bench: fig%s %s: %w", id, setting.Name, err)
		}
		x := float64(idx + 1)
		fig.Series[0].Point(x, whs)
		fig.Series[1].Point(x, srs)
	}
	return fig, nil
}

// Fig10a reproduces Figure 10(a): accuracy under fluctuating sub-stream
// rates, Gaussian values. The paper reports ApproxIoT ≤ 0.056% and up to
// 5.5× better than SRS.
func Fig10a(scale Scale) (Figure, error) {
	return fig10("10a", "Accuracy under fluctuating rates (Gaussian)", true, scale)
}

// Fig10b reproduces Figure 10(b): the Poisson variant; ApproxIoT ≤ 0.014%
// and up to 74× better than SRS.
func Fig10b(scale Scale) (Figure, error) {
	return fig10("10b", "Accuracy under fluctuating rates (Poisson)", false, scale)
}

// Fig10c reproduces Figure 10(c): the extreme-skew stream where sub-stream
// D is 0.01% of the items but (λ = 10⁷) carries ~99% of the value. SRS can
// wildly over- or under-estimate (the paper shows errors over 100% at low
// fractions); ApproxIoT stays ≤ 0.035% because stratification never drops D.
func Fig10c(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "10c",
		Title:  "Accuracy under extreme skew (Poisson, D = 0.01% of items, λ=10⁷)",
		XLabel: "fraction%",
		YLabel: "accuracy loss (%)",
		Series: []Series{{Label: "ApproxIoT"}, {Label: "SRS"}},
		Notes:  "paper: SRS error up to ~100%+; ApproxIoT ≤ 0.035%",
	}
	sources := topology.Testbed().Sources
	// Sub-stream D is 1 item in 10⁴: raise the total rate until a run
	// contains at least ~25 D items, or the skew contrast cannot show.
	totalRate := 4 * scale.RatePerSubstream
	if min := 25 / 0.0001 / scale.SimDuration.Seconds(); totalRate < min {
		totalRate = min
	}
	src := func(seed uint64) func(i int) workload.Source {
		return func(i int) workload.Source {
			return workload.ExtremeSkew(seed+uint64(i)*211, totalRate/float64(sources))
		}
	}
	for _, pct := range fractionsPct {
		f := pct / 100
		whs, err := meanAccuracyLossPct(sysWHS, f, src, scale)
		if err != nil {
			return fig, fmt.Errorf("bench: fig10c WHS: %w", err)
		}
		srs, err := meanAccuracyLossPct(sysSRS, f, src, scale)
		if err != nil {
			return fig, fmt.Errorf("bench: fig10c SRS: %w", err)
		}
		fig.Series[0].Point(pct, whs)
		fig.Series[1].Point(pct, srs)
	}
	return fig, nil
}
