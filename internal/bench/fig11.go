package bench

import (
	"fmt"

	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/workload"
)

// taxiSources builds the synthetic NYC-taxi trace (§VI-A substitute): 12
// dispatch zones per source with geometrically-decaying activity,
// heavy-tailed log-normal fares, and a diurnal demand cycle.
func taxiSources(scale Scale, sources int) sourceFunc {
	base := 4 * scale.RatePerSubstream / float64(sources) / 3.87 // Σ 0.75^i ≈ 3.87 for 12 zones
	return func(seed uint64) func(i int) workload.Source {
		return func(i int) workload.Source {
			return workload.NYCTaxi(seed+uint64(i)*211, 12, base)
		}
	}
}

// pollutionSources builds the synthetic Brasov pollution trace (§VI-B
// substitute): four pollutant channels with slowly-drifting AR(1) levels.
// The sensor period is compressed to 1 s so bench runs observe enough items.
func pollutionSources(scale Scale, sources int) sourceFunc {
	sensors := int(scale.RatePerSubstream / float64(sources))
	if sensors < 1 {
		sensors = 1
	}
	return func(seed uint64) func(i int) workload.Source {
		return func(i int) workload.Source {
			return workload.BrasovPollution(seed+uint64(i)*211, sensors, 1)
		}
	}
}

// Fig11a reproduces Figure 11(a): ApproxIoT's accuracy loss vs sampling
// fraction on the two case-study workloads. The paper reports the taxi
// query at 0.1% loss with a 10% fraction (0.04% at 47%), and the pollution
// dataset lower and flatter because its values are more stable.
func Fig11a(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "11a",
		Title:  "Accuracy loss vs fraction (real-world case studies)",
		XLabel: "fraction%",
		YLabel: "accuracy loss (%)",
		Series: []Series{{Label: "NYC-Taxi"}, {Label: "Brasov-Pollution"}},
		Notes:  "synthetic trace substitutes; see DESIGN.md §4",
	}
	sources := topology.Testbed().Sources
	taxi := taxiSources(scale, sources)
	poll := pollutionSources(scale, sources)
	for _, pct := range fractionsPct {
		f := pct / 100
		t, err := meanAccuracyLossPct(sysWHS, f, taxi, scale)
		if err != nil {
			return fig, fmt.Errorf("bench: fig11a taxi: %w", err)
		}
		p, err := meanAccuracyLossPct(sysWHS, f, poll, scale)
		if err != nil {
			return fig, fmt.Errorf("bench: fig11a pollution: %w", err)
		}
		fig.Series[0].Point(pct, t)
		fig.Series[1].Point(pct, p)
	}
	return fig, nil
}

// Fig11b reproduces Figure 11(b): throughput vs sampling fraction for the
// two case studies on the live pipeline, against the flat native line. The
// paper reports ~9× native throughput at the 10% fraction.
func Fig11b(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "11b",
		Title:  "Throughput vs fraction (real-world case studies)",
		XLabel: "fraction%",
		YLabel: "throughput (items/s)",
		Series: []Series{{Label: "NYC-Taxi"}, {Label: "Brasov-Pollution"}, {Label: "Native"}},
		Notes:  "paper: ~9–10× native at 10%; native flat",
	}
	sources := topology.Testbed().Sources
	taxi := taxiSources(scale, sources)
	poll := pollutionSources(scale, sources)

	native, err := liveFor(sysNative, 1, taxi(scale.Seed), scale)
	if err != nil {
		return fig, fmt.Errorf("bench: fig11b native: %w", err)
	}
	for _, pct := range fractionsWithFullPct {
		f := pct / 100
		t, err := liveFor(sysWHS, f, taxi(scale.Seed), scale)
		if err != nil {
			return fig, fmt.Errorf("bench: fig11b taxi: %w", err)
		}
		p, err := liveFor(sysWHS, f, poll(scale.Seed), scale)
		if err != nil {
			return fig, fmt.Errorf("bench: fig11b pollution: %w", err)
		}
		fig.Series[0].Point(pct, t.Throughput)
		fig.Series[1].Point(pct, p.Throughput)
		fig.Series[2].Point(pct, native.Throughput)
	}
	return fig, nil
}
