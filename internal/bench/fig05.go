package bench

import "github.com/approxiot/approxiot/internal/topology"

// Fig5a reproduces Figure 5(a): accuracy loss vs sampling fraction for the
// four-Gaussian-sub-stream microbenchmark. The paper reports ApproxIoT's
// loss at most 0.035% and well below SRS at every fraction.
func Fig5a(scale Scale) (Figure, error) {
	src := gaussianMicroSources(scale.RatePerSubstream, topology.Testbed().Sources)
	fig, err := accuracyFigure("5a", "Accuracy loss vs sampling fraction (Gaussian)", src, scale)
	fig.Notes = "paper: ApproxIoT ≤ 0.035%, ~10× better than SRS at 10%"
	return fig, err
}

// Fig5b reproduces Figure 5(b): the Poisson variant (λ = 10 … 10⁴).
// The paper reports ApproxIoT's loss at most 0.013%, ~30× better than SRS
// at the 10% fraction.
func Fig5b(scale Scale) (Figure, error) {
	src := poissonMicroSources(scale.RatePerSubstream, topology.Testbed().Sources)
	fig, err := accuracyFigure("5b", "Accuracy loss vs sampling fraction (Poisson)", src, scale)
	fig.Notes = "paper: ApproxIoT ≤ 0.013%, ~30× better than SRS at 10%"
	return fig, err
}
