package bench

import (
	"fmt"
	"time"

	"github.com/approxiot/approxiot/internal/core"
	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/workload"
)

// system identifies one evaluated approach.
type system int

const (
	sysWHS system = iota + 1
	sysSRS
	sysNative
)

func (s system) label() string {
	switch s {
	case sysWHS:
		return "ApproxIoT"
	case sysSRS:
		return "SRS"
	default:
		return "Native"
	}
}

// sourceFunc builds per-source generators for a workload family. The
// returned function must create a fresh generator per source index so each
// source has decorrelated randomness.
type sourceFunc func(seed uint64) func(i int) workload.Source

// gaussianMicroSources splits the four Gaussian sub-streams evenly across
// the 8 source nodes (total per-sub-stream rate = ratePerSubstream).
func gaussianMicroSources(ratePerSubstream float64, sources int) sourceFunc {
	return func(seed uint64) func(i int) workload.Source {
		return func(i int) workload.Source {
			return workload.GaussianMicro(seed+uint64(i)*211, ratePerSubstream/float64(sources))
		}
	}
}

// poissonMicroSources is the Poisson analogue.
func poissonMicroSources(ratePerSubstream float64, sources int) sourceFunc {
	return func(seed uint64) func(i int) workload.Source {
		return func(i int) workload.Source {
			return workload.PoissonMicro(seed+uint64(i)*211, ratePerSubstream/float64(sources))
		}
	}
}

// simFor runs one simulated experiment for a system at a fraction.
func simFor(sys system, fraction float64, src func(i int) workload.Source, scale Scale, mutate func(*core.SimConfig)) (*core.SimResult, error) {
	cfg := core.SimConfig{
		Spec:     topology.Testbed(),
		Source:   src,
		Cost:     core.EffectiveFractionBudget{Fraction: fraction},
		Duration: scale.SimDuration,
		Queries:  []query.Kind{query.Sum, query.Count},
		Seed:     scale.Seed,
	}
	switch sys {
	case sysWHS:
		cfg.NewSampler = core.WHSFactory()
	case sysSRS:
		cfg.NewSampler = core.SRSFactory(fraction)
		cfg.Streaming = true
	case sysNative:
		cfg.NewSampler = core.NativeFactory()
		cfg.Cost = core.FractionBudget{Fraction: 1}
		cfg.Streaming = true
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return core.RunSim(cfg)
}

// meanAccuracyLossPct averages the run-total SUM accuracy loss (in percent)
// over scale.Reps seeded repetitions.
func meanAccuracyLossPct(sys system, fraction float64, src sourceFunc, scale Scale) (float64, error) {
	var total float64
	for r := 0; r < scale.Reps; r++ {
		seed := scale.seedFor(r)
		res, err := simFor(sys, fraction, src(seed), scale, func(c *core.SimConfig) { c.Seed = seed })
		if err != nil {
			return 0, fmt.Errorf("bench: %s at %.0f%%: %w", sys.label(), fraction*100, err)
		}
		total += res.AccuracyLoss(query.Sum) * 100
	}
	return total / float64(scale.Reps), nil
}

// accuracyFigure sweeps fractions for ApproxIoT and SRS over one workload.
func accuracyFigure(id, title string, src sourceFunc, scale Scale) (Figure, error) {
	fig := Figure{
		ID:     id,
		Title:  title,
		XLabel: "fraction%",
		YLabel: "accuracy loss (%)",
		Series: []Series{{Label: "ApproxIoT"}, {Label: "SRS"}},
	}
	for _, pct := range fractionsPct {
		f := pct / 100
		whs, err := meanAccuracyLossPct(sysWHS, f, src, scale)
		if err != nil {
			return fig, err
		}
		srs, err := meanAccuracyLossPct(sysSRS, f, src, scale)
		if err != nil {
			return fig, err
		}
		fig.Series[0].Point(pct, whs)
		fig.Series[1].Point(pct, srs)
	}
	return fig, nil
}

// liveFor runs one live experiment for a system at a fraction.
func liveFor(sys system, fraction float64, src func(i int) workload.Source, scale Scale) (*core.LiveResult, error) {
	cfg := core.LiveConfig{
		Spec:     topology.Testbed(),
		Source:   src,
		Cost:     core.EffectiveFractionBudget{Fraction: fraction},
		Items:    scale.LiveItems,
		Window:   30 * time.Millisecond,
		RootWork: scale.RootWork,
		Queries:  []query.Kind{query.Sum, query.Count},
		Seed:     scale.Seed,
	}
	switch sys {
	case sysWHS:
		cfg.NewSampler = core.WHSFactory()
	case sysSRS:
		cfg.NewSampler = core.SRSFactory(fraction)
		cfg.Streaming = true
	case sysNative:
		cfg.NewSampler = core.NativeFactory()
		cfg.Cost = core.FractionBudget{Fraction: 1}
		cfg.Streaming = true
	}
	return core.RunLive(cfg)
}
