package bench

import (
	"strings"
	"testing"
	"time"
)

// testScale keeps the full shape-check suite fast; the assertions below
// test the paper's qualitative claims, not its absolute numbers.
func testScale() Scale {
	return Scale{
		Reps:             2,
		SimDuration:      4 * time.Second,
		RatePerSubstream: 500,
		LiveItems:        10000,
		RootWork:         40 * time.Microsecond,
		Seed:             2018,
	}
}

func seriesMean(s *Series) float64 {
	if len(s.Y) == 0 {
		return 0
	}
	var sum float64
	for _, y := range s.Y {
		sum += y
	}
	return sum / float64(len(s.Y))
}

func TestFig5aShape(t *testing.T) {
	fig, err := Fig5a(testScale())
	if err != nil {
		t.Fatalf("Fig5a: %v", err)
	}
	whs, srs := fig.Find("ApproxIoT"), fig.Find("SRS")
	if whs == nil || srs == nil || len(whs.Y) != 6 {
		t.Fatalf("malformed figure: %+v", fig)
	}
	// Claim 1: ApproxIoT beats SRS on average across the sweep.
	if seriesMean(whs) >= seriesMean(srs) {
		t.Errorf("ApproxIoT mean loss %.4f%% not below SRS %.4f%%", seriesMean(whs), seriesMean(srs))
	}
	// Claim: ApproxIoT stays well under 1% on the Gaussian mix.
	for i, y := range whs.Y {
		if y > 1 {
			t.Errorf("ApproxIoT loss at %v%% = %.3f%%, want < 1%%", whs.X[i], y)
		}
	}
	// Claim 2: losses trend down with fraction (compare sweep endpoints).
	if whs.Y[len(whs.Y)-1] > whs.Y[0] {
		t.Errorf("ApproxIoT loss did not shrink: %.4f%% @10%% → %.4f%% @90%%", whs.Y[0], whs.Y[len(whs.Y)-1])
	}
}

func TestFig5bShape(t *testing.T) {
	fig, err := Fig5b(testScale())
	if err != nil {
		t.Fatalf("Fig5b: %v", err)
	}
	whs, srs := fig.Find("ApproxIoT"), fig.Find("SRS")
	if seriesMean(whs) >= seriesMean(srs) {
		t.Errorf("Poisson: ApproxIoT mean %.4f%% not below SRS %.4f%%", seriesMean(whs), seriesMean(srs))
	}
}

func TestFig6Shape(t *testing.T) {
	fig, err := Fig6(testScale())
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	whs, srs, native := fig.Find("ApproxIoT"), fig.Find("SRS"), fig.Find("Native")
	w10, _ := whs.At(10)
	w100, _ := whs.At(100)
	n, _ := native.At(10)
	// Claim 4: throughput grows as the fraction shrinks; 10% well above native.
	if w10 < 1.5*n {
		t.Errorf("throughput at 10%% (%.0f) not well above native (%.0f)", w10, n)
	}
	if w10 < w100 {
		t.Errorf("throughput at 10%% (%.0f) below 100%% (%.0f)", w10, w100)
	}
	// Claim 3: at 100% both sampled systems are in native's ballpark.
	s100, _ := srs.At(100)
	if w100 < 0.4*n || s100 < 0.4*n {
		t.Errorf("100%% fraction throughput (%0.f / %0.f) far below native %0.f", w100, s100, n)
	}
}

func TestFig7Shape(t *testing.T) {
	fig, err := Fig7(testScale())
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	for _, label := range []string{"ApproxIoT", "SRS"} {
		s := fig.Find(label)
		for i, pct := range s.X {
			want := 100 - pct // saving ≈ 100·(1−f)
			if diff := s.Y[i] - want; diff > 8 || diff < -8 {
				t.Errorf("%s saving at %v%% = %.1f%%, want ~%.0f%%", label, pct, s.Y[i], want)
			}
		}
	}
}

func TestFig8Shape(t *testing.T) {
	fig, err := Fig8(testScale())
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	whs, native := fig.Find("ApproxIoT"), fig.Find("Native")
	w10, _ := whs.At(10)
	n10, _ := native.At(10)
	// Claim 6: sampled latency well under saturated native latency.
	if n10 < 2*w10 {
		t.Errorf("native latency %.2fs not ≫ ApproxIoT@10%% %.2fs", n10, w10)
	}
}

func TestFig9Shape(t *testing.T) {
	fig, err := Fig9(testScale())
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	whs, srs := fig.Find("ApproxIoT"), fig.Find("SRS")
	// ApproxIoT grows with window.
	if whs.Y[len(whs.Y)-1] <= whs.Y[0] {
		t.Errorf("ApproxIoT latency flat across windows: %v", whs.Y)
	}
	// SRS stays (nearly) flat: growth factor ≪ the 8× window growth.
	if srs.Y[0] > 0 && srs.Y[len(srs.Y)-1] > 3*srs.Y[0] {
		t.Errorf("SRS latency grew %.1f× across windows, want ~flat", srs.Y[len(srs.Y)-1]/srs.Y[0])
	}
}

func TestFig10aShape(t *testing.T) {
	fig, err := Fig10a(testScale())
	if err != nil {
		t.Fatalf("Fig10a: %v", err)
	}
	whs, srs := fig.Find("ApproxIoT"), fig.Find("SRS")
	if seriesMean(whs) >= seriesMean(srs) {
		t.Errorf("fluctuating rates: ApproxIoT %.4f%% not below SRS %.4f%%", seriesMean(whs), seriesMean(srs))
	}
}

func TestFig10cShape(t *testing.T) {
	fig, err := Fig10c(testScale())
	if err != nil {
		t.Fatalf("Fig10c: %v", err)
	}
	whs, srs := fig.Find("ApproxIoT"), fig.Find("SRS")
	// The headline claim: under extreme skew SRS collapses, ApproxIoT holds.
	if seriesMean(srs) < 3*seriesMean(whs) {
		t.Errorf("skew: SRS mean %.3f%% not ≫ ApproxIoT %.3f%%", seriesMean(srs), seriesMean(whs))
	}
	for i, y := range whs.Y {
		if y > 2 {
			t.Errorf("ApproxIoT skew loss at %v%% = %.3f%%, want small", whs.X[i], y)
		}
	}
}

func TestFig11aShape(t *testing.T) {
	fig, err := Fig11a(testScale())
	if err != nil {
		t.Fatalf("Fig11a: %v", err)
	}
	taxi, poll := fig.Find("NYC-Taxi"), fig.Find("Brasov-Pollution")
	// Pollution values are more stable → lower/flatter curve than taxi.
	if seriesMean(poll) > seriesMean(taxi) {
		t.Errorf("pollution loss %.4f%% above taxi %.4f%%, want lower (stabler values)", seriesMean(poll), seriesMean(taxi))
	}
}

func TestFig11bShape(t *testing.T) {
	fig, err := Fig11b(testScale())
	if err != nil {
		t.Fatalf("Fig11b: %v", err)
	}
	taxi, native := fig.Find("NYC-Taxi"), fig.Find("Native")
	t10, _ := taxi.At(10)
	n10, _ := native.At(10)
	if t10 < 1.5*n10 {
		t.Errorf("taxi throughput at 10%% (%.0f) not well above native (%.0f)", t10, n10)
	}
}

func TestAblationsRun(t *testing.T) {
	s := testScale()
	s.Reps = 1
	for _, id := range []string{"A1", "A2", "A3", "A4"} {
		fig, err := Run(id, s)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(fig.Series) == 0 || len(fig.Series[0].Y) == 0 {
			t.Fatalf("%s produced no data", id)
		}
	}
}

func TestHierarchySavesBandwidth(t *testing.T) {
	s := testScale()
	s.Reps = 1
	fig, err := AblationHierarchy(s)
	if err != nil {
		t.Fatal(err)
	}
	mb := fig.Find("sampled-segment MB")
	hier, _ := mb.At(1)
	rootOnly, _ := mb.At(2)
	if rootOnly < 3*hier {
		t.Errorf("root-only bandwidth %.2fMB not ≫ hierarchical %.2fMB", rootOnly, hier)
	}
}

func TestRegistryCoversAllFigures(t *testing.T) {
	want := []string{"5a", "5b", "6", "7", "8", "9", "10a", "10b", "10c", "11a", "11b"}
	for _, id := range want {
		if _, ok := registry[id]; !ok {
			t.Errorf("figure %s missing from registry", id)
		}
	}
	if _, err := Run("nope", testScale()); err == nil {
		t.Error("unknown figure id accepted")
	}
}

func TestIDsOrdering(t *testing.T) {
	ids := IDs()
	if len(ids) != len(registry) {
		t.Fatalf("IDs() returned %d of %d", len(ids), len(registry))
	}
	if ids[0] != "5a" {
		t.Errorf("first id = %s, want 5a", ids[0])
	}
	last := ids[len(ids)-1]
	if !strings.HasPrefix(last, "A") {
		t.Errorf("ablations should sort last, got %s", last)
	}
}

func TestFigureFormat(t *testing.T) {
	fig := Figure{
		ID: "5a", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{0.5, 0.25}}},
		Notes:  "note",
	}
	out := fig.Format()
	for _, want := range []string{"Figure 5a", "demo", "note", "0.25", "y-axis"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}
