// Package metrics provides the measurement instruments for the paper's three
// evaluation metrics (§V-A): throughput (items processed per second),
// end-to-end latency (log-bucketed histogram with quantiles), and network
// bandwidth (byte counters feeding the Fig. 7 saving rate).
//
// The instruments sit on the live tree's per-record hot path, so the write
// sides are lock-free: Throughput.Add and Histogram.Observe are atomic
// (per-bucket counters, CAS min/max), and BandwidthAccount hands hot-path
// writers private per-member counters (Counter) that the read side folds in.
// Readers (Snapshot, Quantile, Total, ...) may observe a sample mid-flight —
// e.g. a bucket incremented before its count — which is fine for telemetry:
// every accessor is eventually consistent and exact once writers quiesce.
package metrics

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Throughput measures items per second over an explicit time span. Add is
// atomic — shard members on the hot path never contend on a lock.
type Throughput struct {
	count atomic.Int64
	start int64        // unix nanos, fixed at construction
	end   atomic.Int64 // unix nanos, monotone max over Add instants
}

// NewThroughput returns a meter whose span starts at start.
func NewThroughput(start time.Time) *Throughput {
	t := &Throughput{start: start.UnixNano()}
	t.end.Store(start.UnixNano())
	return t
}

// Add records n processed items at instant now.
func (t *Throughput) Add(n int64, now time.Time) {
	t.count.Add(n)
	storeMax(&t.end, now.UnixNano())
}

// Count returns the total items recorded.
func (t *Throughput) Count() int64 { return t.count.Load() }

// Rate returns items/second over the observed span (0 if the span is empty).
func (t *Throughput) Rate() float64 {
	span := time.Duration(t.end.Load() - t.start)
	if span <= 0 {
		return 0
	}
	return float64(t.count.Load()) / span.Seconds()
}

// RateOver returns items/second against an externally-measured duration.
func (t *Throughput) RateOver(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(t.Count()) / d.Seconds()
}

// storeMax raises a to at least v (CAS loop; lock-free monotone max).
func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// storeMin lowers a to at most v (CAS loop; lock-free monotone min).
func storeMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Histogram is a log-bucketed latency histogram: ~26 buckets per decade from
// 1µs up to >1000s, accurate to a few percent — plenty for p50/p95/p99 on
// simulated WAN latencies while using constant memory regardless of volume.
// Observe is atomic per bucket, so concurrent observers (root shard members)
// never serialize on a shared lock.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; math.MaxInt64 while empty
	max     atomic.Int64 // nanoseconds
}

const (
	histMin       = time.Microsecond
	histDecades   = 9 // 1µs .. 1000s and beyond
	perDecade     = 26
	histBuckets   = histDecades*perDecade + 1
	bucketLogBase = 10.0
)

func bucketIndex(d time.Duration) int {
	if d < histMin {
		return 0
	}
	idx := int(math.Log10(float64(d)/float64(histMin)) * perDecade)
	if idx < 0 {
		idx = 0
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketValue returns the representative duration for bucket i (geometric
// midpoint of its bounds).
func bucketValue(i int) time.Duration {
	lo := float64(histMin) * math.Pow(bucketLogBase, float64(i)/perDecade)
	hi := float64(histMin) * math.Pow(bucketLogBase, float64(i+1)/perDecade)
	return time.Duration(math.Sqrt(lo * hi))
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	storeMin(&h.min, int64(d))
	storeMax(&h.max, int64(d))
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the average latency (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	v := h.min.Load()
	if v == math.MaxInt64 {
		return 0
	}
	return time.Duration(v)
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Merge folds other's samples into h. Observers may keep writing to either
// side; the fold is eventually consistent and exact once writers quiesce
// (which is when the run merges per-member histograms into the result).
func (h *Histogram) Merge(other *Histogram) {
	if other.count.Load() == 0 {
		return
	}
	for i := range other.buckets {
		if c := other.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	storeMin(&h.min, other.min.Load())
	storeMax(&h.max, other.max.Load())
}

// Snapshot returns an independent copy of the histogram's current state.
// Observers can keep writing while the copy is taken, and the caller owns the
// copy outright — the instrument mid-run Snapshot telemetry hands out without
// freezing the hot path.
func (h *Histogram) Snapshot() *Histogram {
	out := NewHistogram()
	out.Merge(h)
	return out
}

// Sum returns the total of every observed sample.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// HistogramBucket is one cumulative bucket of an exported histogram: Count
// samples were observed at or below UpperBound. The shape Prometheus
// histogram exposition wants (`le` labels), before unit conversion.
type HistogramBucket struct {
	// UpperBound is the bucket's inclusive upper bound.
	UpperBound time.Duration
	// Count is cumulative: every sample ≤ UpperBound, not just this
	// bucket's own.
	Count int64
}

// Buckets exports the distribution in cumulative form: ascending upper
// bounds, monotonically non-decreasing counts, with the last entry's Count
// equal to the total the export saw. Buckets that hold no samples are
// coalesced away, so the slice stays small no matter how wide the
// instrument's internal bucket array is; an empty histogram exports nil.
// Safe to call while observers keep writing — a sample landing mid-export
// may be missed by this call, but the returned slice is always internally
// consistent (counts are accumulated in one ascending sweep, never
// re-read), and exact once writers quiesce. Exporters deriving a +Inf
// bucket or a sample count should use the last entry's Count rather than
// Count(), which may have advanced since the sweep.
func (h *Histogram) Buckets() []HistogramBucket {
	var out []HistogramBucket
	var cum int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, HistogramBucket{UpperBound: bucketUpper(i), Count: cum})
	}
	return out
}

// bucketUpper returns bucket i's inclusive upper bound (the geometric grid
// edge above its representative value).
func bucketUpper(i int) time.Duration {
	return time.Duration(float64(histMin) * math.Pow(bucketLogBase, float64(i+1)/perDecade))
}

// Quantile returns the q-th quantile (0 < q <= 1) from the bucket bounds.
// Exact min/max are returned at the extremes.
func (h *Histogram) Quantile(q float64) time.Duration {
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	target := int64(math.Ceil(q * float64(count)))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			v := bucketValue(i)
			if mn := h.Min(); v < mn {
				v = mn
			}
			if mx := h.Max(); v > mx {
				v = mx
			}
			return v
		}
	}
	return h.Max()
}

// String summarizes the distribution for logs and benches.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// BandwidthAccount accumulates bytes sent per named link and computes the
// paper's bandwidth-saving rate against a baseline account. Cold paths call
// Add directly (mutex + map); hot paths request a private Counter once and
// add to it lock-free — the read side folds registered counters in, so no
// shard member ever contends on the shared lock between window boundaries.
type BandwidthAccount struct {
	mu       sync.Mutex
	bytes    map[string]int64
	counters map[string][]*BandwidthCounter
}

// BandwidthCounter is one hot-path writer's private accumulator for a single
// link, registered in its account and folded into totals at read time. The
// padding keeps members on distinct cache lines (no false sharing between
// shard members counting in a tight loop).
type BandwidthCounter struct {
	n atomic.Int64
	_ [56]byte
}

// Add records n more bytes on the counter's link.
func (c *BandwidthCounter) Add(n int64) { c.n.Add(n) }

// NewBandwidthAccount returns an empty account.
func NewBandwidthAccount() *BandwidthAccount {
	return &BandwidthAccount{
		bytes:    make(map[string]int64),
		counters: make(map[string][]*BandwidthCounter),
	}
}

// Add records n bytes sent on the named link (cold-path form).
func (b *BandwidthAccount) Add(link string, n int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bytes[link] += n
}

// Counter registers and returns a private accumulator for the named link.
// Intended for per-member hot paths: each member holds its own counter, and
// reads (Total, Link, Snapshot) merge every registered counter on demand.
func (b *BandwidthAccount) Counter(link string) *BandwidthCounter {
	c := &BandwidthCounter{}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.counters[link] = append(b.counters[link], c)
	return c
}

// linkLocked sums one link's cold-path bytes and registered counters.
// Callers hold b.mu.
func (b *BandwidthAccount) linkLocked(link string) int64 {
	n := b.bytes[link]
	for _, c := range b.counters[link] {
		n += c.n.Load()
	}
	return n
}

// Total returns bytes summed across all links.
func (b *BandwidthAccount) Total() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var total int64
	for link := range b.bytes {
		total += b.linkLocked(link)
	}
	for link := range b.counters {
		if _, dup := b.bytes[link]; !dup {
			total += b.linkLocked(link)
		}
	}
	return total
}

// Link returns the bytes recorded for one link.
func (b *BandwidthAccount) Link(name string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.linkLocked(name)
}

// Snapshot returns a copy of the per-link byte counters at this instant,
// per-member counters folded in. Producers can keep adding while the copy is
// taken; the caller owns the returned map.
func (b *BandwidthAccount) Snapshot() map[string]int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int64, len(b.bytes)+len(b.counters))
	for link := range b.bytes {
		out[link] = b.linkLocked(link)
	}
	for link := range b.counters {
		if _, dup := out[link]; !dup {
			out[link] = b.linkLocked(link)
		}
	}
	return out
}

// SavingRate returns the fraction of baseline bytes avoided:
// 1 − sampled/baseline (Fig. 7's y-axis, as a fraction). A zero baseline
// yields 0.
func SavingRate(sampled, baseline int64) float64 {
	if baseline <= 0 {
		return 0
	}
	s := 1 - float64(sampled)/float64(baseline)
	if s < 0 {
		return 0
	}
	return s
}
