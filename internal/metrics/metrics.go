// Package metrics provides the measurement instruments for the paper's three
// evaluation metrics (§V-A): throughput (items processed per second),
// end-to-end latency (log-bucketed histogram with quantiles), and network
// bandwidth (byte counters feeding the Fig. 7 saving rate).
package metrics

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Throughput measures items per second over an explicit time span.
type Throughput struct {
	mu    sync.Mutex
	count int64
	start time.Time
	end   time.Time
}

// NewThroughput returns a meter whose span starts at start.
func NewThroughput(start time.Time) *Throughput {
	return &Throughput{start: start, end: start}
}

// Add records n processed items at instant now.
func (t *Throughput) Add(n int64, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count += n
	if now.After(t.end) {
		t.end = now
	}
}

// Count returns the total items recorded.
func (t *Throughput) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Rate returns items/second over the observed span (0 if the span is empty).
func (t *Throughput) Rate() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	span := t.end.Sub(t.start)
	if span <= 0 {
		return 0
	}
	return float64(t.count) / span.Seconds()
}

// RateOver returns items/second against an externally-measured duration.
func (t *Throughput) RateOver(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(t.Count()) / d.Seconds()
}

// Histogram is a log-bucketed latency histogram: ~26 buckets per decade from
// 1µs up to >1000s, accurate to a few percent — plenty for p50/p95/p99 on
// simulated WAN latencies while using constant memory regardless of volume.
type Histogram struct {
	mu      sync.Mutex
	buckets [histBuckets]int64
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const (
	histMin       = time.Microsecond
	histDecades   = 9 // 1µs .. 1000s and beyond
	perDecade     = 26
	histBuckets   = histDecades*perDecade + 1
	bucketLogBase = 10.0
)

func bucketIndex(d time.Duration) int {
	if d < histMin {
		return 0
	}
	idx := int(math.Log10(float64(d)/float64(histMin)) * perDecade)
	if idx < 0 {
		idx = 0
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketValue returns the representative duration for bucket i (geometric
// midpoint of its bounds).
func bucketValue(i int) time.Duration {
	lo := float64(histMin) * math.Pow(bucketLogBase, float64(i)/perDecade)
	hi := float64(histMin) * math.Pow(bucketLogBase, float64(i+1)/perDecade)
	return time.Duration(math.Sqrt(lo * hi))
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketIndex(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average latency (0 when empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Merge folds other's samples into h. Hot paths that would otherwise
// contend on one histogram's mutex (e.g. parallel root shards) can observe
// into private histograms and merge once at shutdown.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	buckets := other.buckets
	count := other.count
	sum := other.sum
	min, max := other.min, other.max
	other.mu.Unlock()
	if count == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || min < h.min {
		h.min = min
	}
	if max > h.max {
		h.max = max
	}
	h.count += count
	h.sum += sum
}

// Snapshot returns an independent copy of the histogram's current state.
// Observers can keep writing while the copy is taken (every accessor locks),
// and the caller owns the copy outright — the instrument mid-run Snapshot
// telemetry hands out without freezing the hot path.
func (h *Histogram) Snapshot() *Histogram {
	out := NewHistogram()
	out.Merge(h)
	return out
}

// Quantile returns the q-th quantile (0 < q <= 1) from the bucket bounds.
// Exact min/max are returned at the extremes.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(math.Ceil(q * float64(h.count)))
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			v := bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// String summarizes the distribution for logs and benches.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// BandwidthAccount accumulates bytes sent per named link and computes the
// paper's bandwidth-saving rate against a baseline account.
type BandwidthAccount struct {
	mu    sync.Mutex
	bytes map[string]int64
}

// NewBandwidthAccount returns an empty account.
func NewBandwidthAccount() *BandwidthAccount {
	return &BandwidthAccount{bytes: make(map[string]int64)}
}

// Add records n bytes sent on the named link.
func (b *BandwidthAccount) Add(link string, n int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bytes[link] += n
}

// Total returns bytes summed across all links.
func (b *BandwidthAccount) Total() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var total int64
	for _, n := range b.bytes {
		total += n
	}
	return total
}

// Link returns the bytes recorded for one link.
func (b *BandwidthAccount) Link(name string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytes[name]
}

// Snapshot returns a copy of the per-link byte counters at this instant.
// Producers can keep adding while the copy is taken; the caller owns the
// returned map.
func (b *BandwidthAccount) Snapshot() map[string]int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int64, len(b.bytes))
	for link, n := range b.bytes {
		out[link] = n
	}
	return out
}

// SavingRate returns the fraction of baseline bytes avoided:
// 1 − sampled/baseline (Fig. 7's y-axis, as a fraction). A zero baseline
// yields 0.
func SavingRate(sampled, baseline int64) float64 {
	if baseline <= 0 {
		return 0
	}
	s := 1 - float64(sampled)/float64(baseline)
	if s < 0 {
		return 0
	}
	return s
}
