package metrics

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)

func TestThroughputRate(t *testing.T) {
	m := NewThroughput(epoch)
	m.Add(500, epoch.Add(time.Second))
	m.Add(500, epoch.Add(2*time.Second))
	if got := m.Rate(); got != 500 {
		t.Fatalf("Rate = %g items/s, want 500", got)
	}
	if got := m.Count(); got != 1000 {
		t.Fatalf("Count = %d, want 1000", got)
	}
}

func TestThroughputEmptySpan(t *testing.T) {
	m := NewThroughput(epoch)
	m.Add(100, epoch) // zero elapsed
	if got := m.Rate(); got != 0 {
		t.Fatalf("Rate over empty span = %g, want 0", got)
	}
	if got := m.RateOver(2 * time.Second); got != 50 {
		t.Fatalf("RateOver(2s) = %g, want 50", got)
	}
	if got := m.RateOver(0); got != 0 {
		t.Fatalf("RateOver(0) = %g, want 0", got)
	}
}

func TestThroughputConcurrent(t *testing.T) {
	m := NewThroughput(epoch)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Add(1, epoch.Add(time.Second))
			}
		}()
	}
	wg.Wait()
	if m.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", m.Count())
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if h.Mean() != 20*time.Millisecond {
		t.Fatalf("Mean = %v, want 20ms", h.Mean())
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 30*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v, want 10ms/30ms", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	// Uniform 1..1000 ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Millisecond},
		{0.95, 950 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		rel := math.Abs(float64(got-tc.want)) / float64(tc.want)
		if rel > 0.08 {
			t.Errorf("Quantile(%g) = %v, want %v ± 8%% (off by %.1f%%)", tc.q, got, tc.want, rel*100)
		}
	}
}

func TestHistogramQuantileExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	if got := h.Quantile(0); got != 5*time.Millisecond {
		t.Fatalf("Quantile(0) = %v, want min", got)
	}
	if got := h.Quantile(1); got != 50*time.Millisecond {
		t.Fatalf("Quantile(1) = %v, want max", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram returned non-zero stats")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-time.Second)
	if h.Min() != 0 {
		t.Fatalf("negative sample recorded as %v, want clamped to 0", h.Min())
	}
}

func TestHistogramHugeDuration(t *testing.T) {
	h := NewHistogram()
	h.Observe(2000 * time.Second) // beyond the top decade
	if h.Count() != 1 {
		t.Fatal("out-of-range sample dropped")
	}
	if got := h.Quantile(0.5); got != 2000*time.Second {
		t.Fatalf("Quantile = %v, want clamped to max", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("Count = %d, want 4000", h.Count())
	}
}

func TestBandwidthAccount(t *testing.T) {
	b := NewBandwidthAccount()
	b.Add("l1", 100)
	b.Add("l1", 50)
	b.Add("l2", 25)
	if b.Link("l1") != 150 || b.Link("l2") != 25 {
		t.Fatalf("per-link = %d/%d, want 150/25", b.Link("l1"), b.Link("l2"))
	}
	if b.Total() != 175 {
		t.Fatalf("Total = %d, want 175", b.Total())
	}
}

func TestSavingRate(t *testing.T) {
	tests := []struct {
		sampled, baseline int64
		want              float64
	}{
		{100, 1000, 0.9},
		{1000, 1000, 0},
		{0, 1000, 1},
		{500, 0, 0},     // no baseline
		{2000, 1000, 0}, // sampled exceeded baseline; clamp
	}
	for _, tc := range tests {
		if got := SavingRate(tc.sampled, tc.baseline); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("SavingRate(%d,%d) = %g, want %g", tc.sampled, tc.baseline, got, tc.want)
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Millisecond)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for _, d := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
		a.Observe(d)
	}
	for _, d := range []time.Duration{100 * time.Microsecond, 50 * time.Millisecond} {
		b.Observe(d)
	}

	whole := NewHistogram()
	for _, d := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond,
		100 * time.Microsecond, 50 * time.Millisecond} {
		whole.Observe(d)
	}

	a.Merge(b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), whole.Count())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged min/max = %v/%v, want %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
	if a.Mean() != whole.Mean() {
		t.Fatalf("merged mean = %v, want %v", a.Mean(), whole.Mean())
	}
	for _, q := range []float64{0.25, 0.5, 0.95} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merged q%.2f = %v, want %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}

	// Merging an empty histogram is a no-op; merging into an empty one
	// copies min/max instead of keeping the zero min.
	before := a.Count()
	a.Merge(NewHistogram())
	if a.Count() != before {
		t.Fatalf("empty merge changed count to %d", a.Count())
	}
	empty := NewHistogram()
	empty.Merge(b)
	if empty.Min() != b.Min() || empty.Max() != b.Max() || empty.Count() != b.Count() {
		t.Fatalf("merge into empty = %d/%v/%v, want %d/%v/%v",
			empty.Count(), empty.Min(), empty.Max(), b.Count(), b.Min(), b.Max())
	}
}

func TestHistogramSnapshotWhileWriting(t *testing.T) {
	// The live session reads latency mid-run: Snapshot must return a
	// consistent, independent copy while observers keep writing (run under
	// -race in CI).
	h := NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Observe(time.Duration(1+i%1000) * time.Microsecond)
				}
			}
		}()
	}
	var last int64
	for i := 0; i < 100; i++ {
		snap := h.Snapshot()
		n := snap.Count()
		if n < last {
			t.Fatalf("snapshot count went backwards: %d after %d", n, last)
		}
		last = n
		// The copy is independent: mutating it must not touch the source.
		snap.Observe(time.Hour)
		_ = snap.Quantile(0.99)
	}
	close(stop)
	wg.Wait()
	if h.Max() >= time.Hour {
		t.Fatal("snapshot mutation leaked into the source histogram")
	}
	final := h.Snapshot()
	if final.Count() != h.Count() || final.Mean() != h.Mean() {
		t.Fatalf("quiescent snapshot differs: %v vs %v", final, h)
	}
}

func TestBandwidthSnapshotWhileWriting(t *testing.T) {
	b := NewBandwidthAccount()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			link := fmt.Sprintf("link%d", w)
			for {
				select {
				case <-stop:
					return
				default:
					b.Add(link, 8)
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		snap := b.Snapshot()
		var total int64
		for _, n := range snap {
			total += n
		}
		if total < 0 {
			t.Fatal("negative total")
		}
		snap["intruder"] = 1 // caller owns the copy
	}
	close(stop)
	wg.Wait()
	if b.Link("intruder") != 0 {
		t.Fatal("snapshot map aliases the account")
	}
	snap := b.Snapshot()
	delete(snap, "intruder")
	var total int64
	for _, n := range snap {
		total += n
	}
	if total != b.Total() {
		t.Fatalf("quiescent snapshot total %d != account total %d", total, b.Total())
	}
}

// TestBandwidthCounters pins the hot-path accounting form: per-member
// counters registered on a link accumulate contention-free and are merged
// with Add-side bytes at read time, across Link, Total, and Snapshot.
func TestBandwidthCounters(t *testing.T) {
	b := NewBandwidthAccount()
	c1 := b.Counter("edge")
	c2 := b.Counter("edge") // second member, same link
	c3 := b.Counter("root")
	c1.Add(10)
	c2.Add(5)
	c3.Add(7)
	b.Add("edge", 100) // slow-path adds merge with counters
	b.Add("ctl", 3)
	if got := b.Link("edge"); got != 115 {
		t.Fatalf("Link(edge) = %d, want 115", got)
	}
	if got := b.Total(); got != 125 {
		t.Fatalf("Total = %d, want 125", got)
	}
	snap := b.Snapshot()
	want := map[string]int64{"edge": 115, "root": 7, "ctl": 3}
	if len(snap) != len(want) {
		t.Fatalf("Snapshot = %v, want %v", snap, want)
	}
	for link, n := range want {
		if snap[link] != n {
			t.Fatalf("Snapshot[%s] = %d, want %d", link, snap[link], n)
		}
	}
}

// TestBandwidthCountersConcurrent hammers one link's counters from many
// goroutines while a reader folds totals, under the race detector.
func TestBandwidthCountersConcurrent(t *testing.T) {
	b := NewBandwidthAccount()
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: totals must only ever grow
		defer wg.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if got := b.Total(); got < last {
				t.Errorf("Total regressed: %d after %d", got, last)
				return
			} else {
				last = got
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			c := b.Counter("hot")
			for i := 0; i < perWorker; i++ {
				c.Add(1)
			}
		}()
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if got := b.Link("hot"); got != workers*perWorker {
		t.Fatalf("Link(hot) = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	h := NewHistogram()
	samples := []time.Duration{
		5 * time.Microsecond,
		5 * time.Microsecond,
		800 * time.Microsecond,
		30 * time.Millisecond,
		30 * time.Millisecond,
		30 * time.Millisecond,
		2 * time.Second,
	}
	for _, d := range samples {
		h.Observe(d)
	}
	bks := h.Buckets()
	if len(bks) != 4 {
		t.Fatalf("Buckets() = %d entries, want 4 (one per distinct populated bucket): %+v", len(bks), bks)
	}
	// Cumulative counts along the distinct sample magnitudes.
	wantCum := []int64{2, 3, 6, 7}
	for i, bk := range bks {
		if bk.Count != wantCum[i] {
			t.Errorf("bucket %d: cumulative count = %d, want %d", i, bk.Count, wantCum[i])
		}
		if i > 0 && bk.UpperBound <= bks[i-1].UpperBound {
			t.Errorf("bucket %d: upper bound %v not ascending past %v", i, bk.UpperBound, bks[i-1].UpperBound)
		}
	}
	if last := bks[len(bks)-1].Count; last != h.Count() {
		t.Errorf("last cumulative count = %d, want total %d", last, h.Count())
	}
	// Every sample must sit at or below the bound of the bucket that counted
	// it: the bound for the first two samples must cover 5µs, etc.
	if bks[0].UpperBound < 5*time.Microsecond {
		t.Errorf("first bound %v below the 5µs samples it counts", bks[0].UpperBound)
	}
	if h.Sum() != 2090810*time.Microsecond {
		t.Errorf("Sum() = %v, want %v", h.Sum(), 2090810*time.Microsecond)
	}
}

func TestHistogramBucketsEmpty(t *testing.T) {
	if bks := NewHistogram().Buckets(); bks != nil {
		t.Fatalf("empty histogram Buckets() = %+v, want nil", bks)
	}
}

// TestHistogramBucketsWhileObserving races the cumulative exporter against
// hot-path observers: every export must be internally consistent — counts
// non-decreasing at ascending bounds — and the final quiesced export exact.
// Run with -race, this is also the Observe-during-export data-race check.
func TestHistogramBucketsWhileObserving(t *testing.T) {
	h := NewHistogram()
	const workers, perWorker = 4, 20000
	var writers sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(1+(i%1000)*(w+1)) * time.Microsecond)
			}
		}(w)
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			bks := h.Buckets()
			for i := 1; i < len(bks); i++ {
				if bks[i].Count < bks[i-1].Count {
					t.Errorf("cumulative count regressed inside one export: %d then %d", bks[i-1].Count, bks[i].Count)
					return
				}
				if bks[i].UpperBound <= bks[i-1].UpperBound {
					t.Errorf("upper bounds not ascending: %v then %v", bks[i-1].UpperBound, bks[i].UpperBound)
					return
				}
			}
		}
	}()
	close(start)
	writers.Wait()
	close(stop)
	reader.Wait()
	bks := h.Buckets()
	if len(bks) == 0 || bks[len(bks)-1].Count != workers*perWorker {
		t.Fatalf("quiesced export total = %+v, want %d", bks, workers*perWorker)
	}
}
