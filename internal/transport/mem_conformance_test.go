package transport_test

import (
	"context"
	"testing"

	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/transport"
	"github.com/approxiot/approxiot/internal/transport/conformance"
)

// TestMemConformance runs the transport contract against the in-memory
// backend — the reference implementation checking itself, so a contract
// drift shows up here before it shows up as a TCP "bug".
func TestMemConformance(t *testing.T) {
	conformance.Run(t, func(t *testing.T) conformance.Backend {
		b := mq.NewBroker()
		t.Cleanup(b.Close)
		return conformance.Backend{
			Bus:             transport.WrapBroker(b),
			ShutdownBackend: b.Close,
		}
	})
}

func newWarmBus(t *testing.T) transport.Bus {
	t.Helper()
	b := mq.NewBroker()
	t.Cleanup(b.Close)
	return transport.WrapBroker(b)
}

// TestMemOwnership checks the Bus ownership split: NewMem closes its private
// broker, WrapBroker never closes the caller's.
func TestMemOwnership(t *testing.T) {
	m := transport.NewMem()
	if err := m.CreateTopic("t", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateTopic("u", 1, 0); err == nil {
		t.Fatal("owned broker still alive after Bus.Close")
	}

	b := mq.NewBroker()
	defer b.Close()
	w := transport.WrapBroker(b)
	if err := w.CreateTopic("t", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Topic("t"); err != nil {
		t.Fatalf("wrapped broker was closed by Bus.Close: %v", err)
	}
}

// TestMemPollAllocDiscipline pins the steady-state poll loop's allocation
// behavior on the in-memory backend: with a warmed caller-owned scratch,
// PollInto must not allocate per poll. This is the budget the batched hot
// path was built against; a transport refactor must not regress it.
func TestMemPollAllocDiscipline(t *testing.T) {
	bus := newWarmBus(t)
	if err := bus.CreateTopic("t", 2, 0); err != nil {
		t.Fatal(err)
	}
	c, err := bus.NewGroupConsumer("t", "g")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := bus.NewProducer()
	const total = 20000
	for i := 0; i < total; i += 100 {
		recs := make([]transport.Record, 100)
		for j := range recs {
			recs[j].Key = []byte{byte(j % 8)}
			recs[j].Value = []byte{byte(j)}
		}
		if err := p.SendBatch("t", recs); err != nil {
			t.Fatal(err)
		}
	}

	scratch := make([]transport.Record, 0, 256)
	// Warm the path once, then measure.
	scratch, _ = c.TryPollInto(scratch[:0], 256)
	consumed := len(scratch)
	allocs := testing.AllocsPerRun(50, func() {
		out, err := c.TryPollInto(scratch[:0], 256)
		if err != nil {
			t.Fatal(err)
		}
		consumed += len(out)
		scratch = out
	})
	// A group poll's floor is the assignment snapshot plus the per-partition
	// claim closure; the cap catches per-record copying creeping in.
	if allocs > 4 {
		t.Fatalf("steady-state TryPollInto allocates %.1f times per poll, budget is <=4", allocs)
	}
	if consumed == 0 {
		t.Fatal("poll loop consumed nothing; the measurement was vacuous")
	}
}

// TestMemBlockingPollAlloc pins the blocking path too: PollInto with a
// recycled scratch and records already available must stay allocation-free
// apart from the context plumbing the caller chooses.
func TestMemBlockingPollAlloc(t *testing.T) {
	bus := newWarmBus(t)
	if err := bus.CreateTopic("t", 1, 0); err != nil {
		t.Fatal(err)
	}
	c, err := bus.NewConsumer("t")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := bus.NewProducer()
	for i := 0; i < 5000; i++ {
		if _, _, err := p.Send("t", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	scratch := make([]transport.Record, 0, 64)
	scratch, _ = c.PollInto(ctx, scratch[:0], 64)
	allocs := testing.AllocsPerRun(20, func() {
		out, err := c.PollInto(ctx, scratch[:0], 64)
		if err != nil {
			t.Fatal(err)
		}
		scratch = out
	})
	if allocs > 4 {
		t.Fatalf("ready-records PollInto allocates %.1f times per poll, budget is <=4", allocs)
	}
}
