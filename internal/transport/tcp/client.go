package tcp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/transport"
)

const (
	dialTimeout = 5 * time.Second
	// ioGrace pads every read deadline past the request's server-side wait
	// budget: a response later than wait+grace means the conn is dead, not
	// slow.
	ioGrace = 15 * time.Second
	// longPollMs is the client's blocking-poll round: PollInto re-issues
	// fetches of this length, checking its context between rounds.
	longPollMs = 250
	// watchPollMs is the long-poll round of the background WaitChan and
	// RebalanceChan watchers — longer than fetch rounds because an idle
	// watcher's only cost is holding a parked request open.
	watchPollMs = 2000
)

// Client mounts a remote Server as a transport.Bus. Producers and consumers
// each own a dedicated connection (their request streams are independent and
// a blocking fetch must not head-of-line-block an unrelated send); Bus-level
// ops share one admin connection. Every connection transparently redials
// once per failed call: producers retry the send (at-least-once, like a
// non-idempotent Kafka producer), consumers re-open their server-side
// handle — rejoining their group or re-seeking their standalone positions to
// the exact next offsets — before the call is retried, so a broker bounce
// surfaces as at most one failed call, not a wedged pipeline.
type Client struct {
	addr string
	ctr  counters

	mu     sync.Mutex
	closed bool
	conns  map[*rconn]struct{}

	admin *rconn
}

var _ transport.Bus = (*Client)(nil)
var _ transport.CounterSource = (*Client)(nil)

// Dial connects to a Server at addr. It fails fast if the daemon is not
// reachable; connections lost later are redialed per call.
func Dial(addr string) (*Client, error) {
	cl := &Client{addr: addr, conns: make(map[*rconn]struct{})}
	cl.admin = cl.newRconn(nil)
	if err := cl.admin.connect(); err != nil {
		return nil, fmt.Errorf("tcp: dial %s: %w", addr, err)
	}
	return cl, nil
}

// Counters returns this client's wire-traffic counters, summed over all of
// its connections (admin, producers, consumers, watchers).
func (cl *Client) Counters() transport.Counters { return cl.ctr.snapshot() }

// Close drops every connection this client opened. The remote daemon — and
// the topics, groups, and records it holds — keeps running; only this
// process's producers, consumers, and watchers go away (the server reaps
// their handles as the conns drop, so group members leave and rebalance).
func (cl *Client) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	conns := make([]*rconn, 0, len(cl.conns))
	for rc := range cl.conns {
		conns = append(conns, rc)
	}
	cl.mu.Unlock()
	for _, rc := range conns {
		rc.close()
	}
	return nil
}

// CreateTopic creates (or idempotently re-creates) a topic on the daemon.
func (cl *Client) CreateTopic(name string, partitions, retain int) error {
	return cl.admin.call(0, func(req []byte) []byte {
		req = append(req, opCreateTopic)
		req = appendStr(req, name)
		req = appendUvarint(req, uint64(partitions))
		return appendUvarint(req, uint64(retain))
	}, nil)
}

// TopicPartitions returns the partition count of an existing topic.
func (cl *Client) TopicPartitions(name string) (int, error) {
	var n int
	err := cl.admin.call(0, func(req []byte) []byte {
		req = append(req, opTopicParts)
		return appendStr(req, name)
	}, func(r *wireReader) error {
		n = int(r.uvarint())
		return r.err
	})
	return n, err
}

// GroupLag returns a group's total lag on a topic — the remote form of the
// ingest-backpressure probe, answered from the daemon's own committed
// offsets and high watermarks so it is exactly as truthful as in-process.
func (cl *Client) GroupLag(topic, group string) (int64, error) {
	var lag int64
	err := cl.admin.call(0, func(req []byte) []byte {
		req = append(req, opGroupLag)
		req = appendStr(req, topic)
		return appendStr(req, group)
	}, func(r *wireReader) error {
		lag = int64(r.uvarint())
		return r.err
	})
	return lag, err
}

// GroupCommitted returns a group's committed offset per partition.
func (cl *Client) GroupCommitted(topic, group string) ([]int64, error) {
	var offs []int64
	err := cl.admin.call(0, func(req []byte) []byte {
		req = append(req, opGroupCommitted)
		req = appendStr(req, topic)
		return appendStr(req, group)
	}, func(r *wireReader) error {
		n := int(r.uvarint())
		if r.err != nil {
			return r.err
		}
		offs = make([]int64, n)
		for i := range offs {
			offs[i] = int64(r.uvarint())
		}
		return r.err
	})
	return offs, err
}

// FetchInto reads up to max records from a partition starting at offset
// from, appending onto dst. Payload bytes are materialized into one fresh
// block per batch, so the records outlive the connection's frame buffer.
func (cl *Client) FetchInto(dst []transport.Record, topic string, partition int, from int64, max int) ([]transport.Record, error) {
	out := dst
	err := cl.admin.call(0, func(req []byte) []byte {
		req = append(req, opFetchAt)
		req = appendStr(req, topic)
		req = appendUvarint(req, uint64(partition))
		req = appendUvarint(req, uint64(from))
		return appendUvarint(req, uint64(max))
	}, func(r *wireReader) error {
		n := int(r.uvarint())
		if r.err != nil {
			return r.err
		}
		var derr error
		out, derr = decodeRecords(r, out, n)
		return derr
	})
	if err != nil {
		return dst, err
	}
	return out, nil
}

// NewProducer returns a producer with its own connection, dialed lazily on
// first send.
func (cl *Client) NewProducer() transport.Producer {
	return &clientProducer{cl: cl, rc: cl.newRconn(nil)}
}

// NewConsumer returns a standalone consumer over every partition of topic.
func (cl *Client) NewConsumer(topic string) (transport.Consumer, error) {
	return cl.newConsumer(topic, "")
}

// NewGroupConsumer returns a consumer that joins the named group on topic.
func (cl *Client) NewGroupConsumer(topic, group string) (transport.Consumer, error) {
	if group == "" {
		return nil, errors.New("tcp: empty group name")
	}
	return cl.newConsumer(topic, group)
}

func (cl *Client) newConsumer(topic, group string) (*clientConsumer, error) {
	cc := &clientConsumer{
		cl:        cl,
		topic:     topic,
		group:     group,
		positions: make(map[int]int64),
	}
	// The open runs inside the reconnect hook so a redial re-establishes the
	// server-side handle (rejoin the group / re-seek standalone positions)
	// before the failed call is retried.
	cc.rc = cl.newRconn(cc.reopen)
	if err := cc.rc.connect(); err != nil {
		cc.rc.close()
		return nil, err
	}
	return cc, nil
}

func (cl *Client) newRconn(hook func(raw rawCall) error) *rconn {
	rc := &rconn{cl: cl, hook: hook}
	cl.mu.Lock()
	if cl.closed {
		rc.closed = true
	} else {
		cl.conns[rc] = struct{}{}
	}
	cl.mu.Unlock()
	return rc
}

func (cl *Client) dropConn(rc *rconn) {
	cl.mu.Lock()
	delete(cl.conns, rc)
	cl.mu.Unlock()
}

// ---- reconnecting connection ----

// rawCall performs one request/response on an rconn's live connection with
// no locking or retry — the primitive reconnect hooks are handed to rebuild
// session state. The returned reader is valid until the next call.
type rawCall func(req []byte, waitMs uint64) (*wireReader, error)

// rconn is one client connection: calls are serialized by mu, and a call
// that hits an I/O error closes the conn, redials once, replays the
// reconnect hook, rebuilds the request, and retries. The conn pointer and
// closed flag live under their own cmu (never held across I/O) so close()
// can interrupt a parked long-poll from another goroutine.
type rconn struct {
	cl   *Client
	hook func(raw rawCall) error

	mu     sync.Mutex // serializes calls
	reqBuf []byte
	rbuf   []byte
	sbuf   []byte

	cmu        sync.Mutex
	conn       net.Conn
	everDialed bool
	closed     bool
}

func (rc *rconn) connect() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.ensureLocked()
}

func (rc *rconn) isClosed() bool {
	rc.cmu.Lock()
	defer rc.cmu.Unlock()
	return rc.closed
}

func (rc *rconn) close() {
	rc.cmu.Lock()
	if rc.closed {
		rc.cmu.Unlock()
		return
	}
	rc.closed = true
	if rc.conn != nil {
		rc.conn.Close() // interrupts any parked read immediately
		rc.conn = nil
	}
	rc.cmu.Unlock()
	rc.cl.dropConn(rc)
}

// liveConn returns the current conn, or nil if absent/closed.
func (rc *rconn) liveConn() (net.Conn, error) {
	rc.cmu.Lock()
	defer rc.cmu.Unlock()
	if rc.closed {
		return nil, fmt.Errorf("%w: transport client closed", mq.ErrClosed)
	}
	return rc.conn, nil
}

func (rc *rconn) dropLive(conn net.Conn) {
	conn.Close()
	rc.cmu.Lock()
	if rc.conn == conn {
		rc.conn = nil
	}
	rc.cmu.Unlock()
}

// ensureLocked dials (or redials) and replays the reconnect hook. Callers
// hold rc.mu.
func (rc *rconn) ensureLocked() error {
	conn, err := rc.liveConn()
	if err != nil {
		return err
	}
	if conn != nil {
		return nil
	}
	conn, err = net.DialTimeout("tcp", rc.cl.addr, dialTimeout)
	if err != nil {
		return err
	}
	rc.cmu.Lock()
	if rc.closed {
		rc.cmu.Unlock()
		conn.Close()
		return fmt.Errorf("%w: transport client closed", mq.ErrClosed)
	}
	if rc.everDialed {
		rc.cl.ctr.reconnects.Add(1)
	}
	rc.everDialed = true
	rc.conn = conn
	rc.cmu.Unlock()
	if rc.hook != nil {
		raw := func(req []byte, waitMs uint64) (*wireReader, error) {
			frame, err := rc.exchange(conn, req, waitMs)
			if err != nil {
				return nil, err
			}
			return parseResp(frame)
		}
		if err := rc.hook(raw); err != nil {
			rc.dropLive(conn)
			return err
		}
	}
	return nil
}

// exchange writes one request frame and reads the response frame. Callers
// hold rc.mu; the returned frame aliases rc.rbuf and is valid until the
// next exchange.
func (rc *rconn) exchange(conn net.Conn, req []byte, waitMs uint64) ([]byte, error) {
	conn.SetDeadline(time.Now().Add(ioGrace + time.Duration(waitMs)*time.Millisecond))
	n, sbuf, err := writeFrame(conn, rc.sbuf, req)
	rc.sbuf = sbuf
	rc.cl.ctr.bytesOut.Add(int64(n))
	if err != nil {
		return nil, err
	}
	frame, rn, err := readFrame(conn, rc.rbuf)
	rc.rbuf = frame
	rc.cl.ctr.bytesIn.Add(int64(rn))
	if err != nil {
		return nil, err
	}
	return frame, nil
}

// call runs one request with redial-and-retry. build is re-invoked per
// attempt (the reconnect hook may have changed state the request embeds,
// e.g. a re-opened consumer handle); decode runs on the stOK payload while
// the frame buffer is still valid. Server-reported errors are returned
// as-is and never retried — only conn-level I/O failures trigger the
// redial.
func (rc *rconn) call(waitMs uint64, build func(req []byte) []byte, decode func(*wireReader) error) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if err := rc.ensureLocked(); err != nil {
			if lastErr != nil && !rc.isClosed() {
				return fmt.Errorf("tcp: reconnect failed: %w (after %v)", err, lastErr)
			}
			return err
		}
		conn, err := rc.liveConn()
		if err != nil {
			return err
		}
		rc.reqBuf = build(rc.reqBuf[:0])
		frame, err := rc.exchange(conn, rc.reqBuf, waitMs)
		if err != nil {
			rc.dropLive(conn)
			lastErr = err
			continue
		}
		r, err := parseResp(frame)
		if err != nil {
			return err
		}
		if decode != nil {
			return decode(r)
		}
		return nil
	}
	return lastErr
}

// parseResp splits a response frame into its status and payload reader.
func parseResp(frame []byte) (*wireReader, error) {
	r := &wireReader{buf: frame}
	st := r.byteVal()
	if r.err != nil {
		return nil, r.err
	}
	if st != stOK {
		return nil, errOf(st, r.str())
	}
	return r, nil
}

// decodeRecords appends n records from r onto dst. Key/Value views into the
// frame buffer are materialized into one fresh block per batch, so returned
// records stay valid after the next poll — the boundary's ownership rule.
func decodeRecords(r *wireReader, dst []mq.Record, n int) ([]mq.Record, error) {
	base := len(dst)
	total := 0
	for i := 0; i < n; i++ {
		rec := r.record()
		if r.err != nil {
			return dst[:base], r.err
		}
		total += len(rec.Key) + len(rec.Value)
		dst = append(dst, rec)
	}
	block := make([]byte, 0, total)
	for i := base; i < len(dst); i++ {
		block, dst[i].Key = blockCopy(block, dst[i].Key)
		block, dst[i].Value = blockCopy(block, dst[i].Value)
	}
	return dst, nil
}

// ---- producer ----

type clientProducer struct {
	cl *Client
	rc *rconn
}

var _ transport.Producer = (*clientProducer)(nil)

func (p *clientProducer) Send(topic string, key, value []byte) (int, int64, error) {
	return p.SendWatermarked(topic, key, value, mq.Watermark{})
}

func (p *clientProducer) SendWatermarked(topic string, key, value []byte, wm mq.Watermark) (int, int64, error) {
	var part int
	var off int64
	err := p.rc.call(0, func(req []byte) []byte {
		req = append(req, opSend)
		req = appendStr(req, topic)
		req = appendBytes(req, key)
		req = appendBytes(req, value)
		return appendWatermark(req, wm)
	}, func(r *wireReader) error {
		part = int(r.uvarint())
		off = int64(r.uvarint())
		return r.err
	})
	if err != nil {
		p.cl.ctr.sendErrs.Add(1)
	}
	return part, off, err
}

func (p *clientProducer) SendTo(topic string, partition int, key, value []byte) (int64, error) {
	return p.SendToWatermarked(topic, partition, key, value, mq.Watermark{})
}

func (p *clientProducer) SendToWatermarked(topic string, partition int, key, value []byte, wm mq.Watermark) (int64, error) {
	var off int64
	err := p.rc.call(0, func(req []byte) []byte {
		req = append(req, opSendTo)
		req = appendStr(req, topic)
		req = appendUvarint(req, uint64(partition))
		req = appendBytes(req, key)
		req = appendBytes(req, value)
		return appendWatermark(req, wm)
	}, func(r *wireReader) error {
		off = int64(r.uvarint())
		return r.err
	})
	if err != nil {
		p.cl.ctr.sendErrs.Add(1)
	}
	return off, err
}

func (p *clientProducer) SendBatch(topic string, recs []mq.Record) error {
	if len(recs) == 0 {
		return nil
	}
	err := p.rc.call(0, func(req []byte) []byte {
		req = append(req, opSendBatch)
		req = appendStr(req, topic)
		req = appendUvarint(req, uint64(len(recs)))
		for i := range recs {
			req = appendBytes(req, recs[i].Key)
			req = appendBytes(req, recs[i].Value)
			req = appendWatermark(req, recs[i].Watermark)
		}
		return req
	}, nil)
	if err != nil {
		p.cl.ctr.sendErrs.Add(1)
	}
	return err
}

// ---- consumer ----

// closedChan is returned by WaitChan once the topic (or consumer) is done:
// a woken caller re-polls, finds nothing, and checks TopicClosed — the
// shut-down topic's "wakes immediately and forever" contract.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

type clientConsumer struct {
	cl    *Client
	topic string
	group string // "" = standalone
	rc    *rconn

	handle      atomic.Uint64
	closed      atomic.Bool
	topicClosed atomic.Bool

	// positions tracks a standalone consumer's next offset per partition so
	// a reconnect can re-seek the fresh server-side consumer to exactly
	// where this one left off (group offsets live server-side and need no
	// client copy).
	pmu       sync.Mutex
	positions map[int]int64

	// WaitChan machinery: a lazily-started watcher long-polls the topic's
	// append epoch over its own conn and closes waitCh on movement.
	wmu         sync.Mutex
	waitCh      chan struct{}
	waitStarted bool
	waitRC      *rconn

	// RebalanceChan machinery, same shape over the handle's generation.
	rmu        sync.Mutex
	rebCh      chan struct{}
	rebStarted bool
	rebRC      *rconn
}

var _ transport.Consumer = (*clientConsumer)(nil)

// reopen is the reconnect hook: it re-establishes the server-side consumer
// on a fresh conn. Group consumers rejoin (a new member under a bumped
// generation; committed offsets are group-owned and survive); standalone
// consumers re-seek every tracked position so no record is re-delivered.
func (cc *clientConsumer) reopen(raw rawCall) error {
	req := []byte{opOpenConsumer}
	req = appendStr(req, cc.topic)
	req = appendStr(req, cc.group)
	r, err := raw(req, 0)
	if err != nil {
		return err
	}
	h := r.uvarint()
	if r.err != nil {
		return r.err
	}
	cc.handle.Store(h)
	if cc.group != "" {
		return nil
	}
	cc.pmu.Lock()
	seeks := make(map[int]int64, len(cc.positions))
	for p, off := range cc.positions {
		seeks[p] = off
	}
	cc.pmu.Unlock()
	for p, off := range seeks {
		req := []byte{opSeek}
		req = appendUvarint(req, h)
		req = appendUvarint(req, uint64(p))
		req = appendUvarint(req, uint64(off))
		if _, err := raw(req, 0); err != nil {
			return err
		}
	}
	return nil
}

// fetch runs one poll round: non-blocking at waitMs 0, else a server-side
// long poll. Topic-closed state piggybacks on every response.
func (cc *clientConsumer) fetch(dst []mq.Record, max int, waitMs uint64) ([]mq.Record, error) {
	if cc.closed.Load() {
		return dst, mq.ErrClosed
	}
	if max <= 0 {
		max = 1
	}
	out := dst
	err := cc.rc.call(waitMs, func(req []byte) []byte {
		req = append(req, opFetch)
		req = appendUvarint(req, cc.handle.Load())
		req = appendUvarint(req, uint64(max))
		return appendUvarint(req, waitMs)
	}, func(r *wireReader) error {
		flags := r.byteVal()
		n := int(r.uvarint())
		if r.err != nil {
			return r.err
		}
		if flags&1 != 0 {
			cc.topicClosed.Store(true)
		}
		var derr error
		out, derr = decodeRecords(r, out, n)
		return derr
	})
	if err != nil {
		if errors.Is(err, mq.ErrClosed) {
			cc.topicClosed.Store(true)
		} else {
			cc.cl.ctr.pollErrs.Add(1)
		}
		return dst, err
	}
	if cc.group == "" && len(out) > len(dst) {
		cc.pmu.Lock()
		for i := len(dst); i < len(out); i++ {
			cc.positions[out[i].Partition] = out[i].Offset + 1
		}
		cc.pmu.Unlock()
	}
	return out, nil
}

func (cc *clientConsumer) Poll(ctx context.Context, max int) ([]mq.Record, error) {
	return cc.PollInto(ctx, nil, max)
}

func (cc *clientConsumer) PollInto(ctx context.Context, dst []mq.Record, max int) ([]mq.Record, error) {
	for {
		out, err := cc.fetch(dst, max, longPollMs)
		if err != nil {
			return dst, err
		}
		if len(out) > len(dst) {
			return out, nil
		}
		if cc.topicClosed.Load() {
			return dst, mq.ErrClosed
		}
		select {
		case <-ctx.Done():
			return dst, ctx.Err()
		default:
		}
	}
}

func (cc *clientConsumer) TryPoll(max int) ([]mq.Record, error) {
	return cc.TryPollInto(nil, max)
}

func (cc *clientConsumer) TryPollInto(dst []mq.Record, max int) ([]mq.Record, error) {
	return cc.fetch(dst, max, 0)
}

// meta fetches the handle's lag/generation/assignment snapshot.
func (cc *clientConsumer) meta() (lag, gen int64, assign []int, err error) {
	err = cc.rc.call(0, func(req []byte) []byte {
		req = append(req, opMeta)
		return appendUvarint(req, cc.handle.Load())
	}, func(r *wireReader) error {
		flags := r.byteVal()
		lag = int64(r.uvarint())
		gen = int64(r.uvarint())
		n := int(r.uvarint())
		if r.err != nil {
			return r.err
		}
		if flags&1 != 0 {
			cc.topicClosed.Store(true)
		}
		assign = make([]int, n)
		for i := range assign {
			assign[i] = int(r.uvarint())
		}
		return r.err
	})
	return lag, gen, assign, err
}

func (cc *clientConsumer) Assignment() []int {
	_, _, assign, err := cc.meta()
	if err != nil {
		return nil
	}
	return assign
}

func (cc *clientConsumer) Lag() int64 {
	lag, _, _, err := cc.meta()
	if err != nil {
		return 0
	}
	return lag
}

func (cc *clientConsumer) Generation() int64 {
	if cc.group == "" {
		return 0
	}
	_, gen, _, err := cc.meta()
	if err != nil {
		return 0
	}
	return gen
}

func (cc *clientConsumer) Committed(p int) int64 {
	var off int64
	err := cc.rc.call(0, func(req []byte) []byte {
		req = append(req, opCommitted)
		req = appendUvarint(req, cc.handle.Load())
		return appendUvarint(req, uint64(p))
	}, func(r *wireReader) error {
		off = int64(r.uvarint())
		return r.err
	})
	if err != nil {
		return 0
	}
	return off
}

func (cc *clientConsumer) Seek(p int, offset int64) error {
	if cc.group != "" {
		// Group offsets are group-owned; fail locally exactly as the
		// in-memory consumer does, without a round trip.
		return mq.ErrNotSubscribed
	}
	err := cc.rc.call(0, func(req []byte) []byte {
		req = append(req, opSeek)
		req = appendUvarint(req, cc.handle.Load())
		req = appendUvarint(req, uint64(p))
		return appendUvarint(req, uint64(offset))
	}, nil)
	if err != nil {
		return err
	}
	cc.pmu.Lock()
	cc.positions[p] = offset
	cc.pmu.Unlock()
	return nil
}

// TopicClosed reports the last observed topic state: every fetch, meta, and
// watcher response refreshes it, so a polling caller observes closure on
// its next round — the pump's arm/try/check sequence needs nothing fresher.
func (cc *clientConsumer) TopicClosed() bool {
	return cc.topicClosed.Load()
}

// WaitChan returns a channel closed when new records may be available. The
// first call starts a background watcher that long-polls the topic's append
// epoch on a dedicated conn; a wakeup therefore lags an append by up to a
// round trip, and spurious wakeups are possible after transport errors —
// both within the interface's stated contract (callers bound their waits).
func (cc *clientConsumer) WaitChan() <-chan struct{} {
	if cc.closed.Load() || cc.topicClosed.Load() {
		return closedChan
	}
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	if cc.waitCh == nil {
		cc.waitCh = make(chan struct{})
	}
	if !cc.waitStarted {
		cc.waitStarted = true
		cc.waitRC = cc.cl.newRconn(nil)
		go cc.waitWatcher(cc.waitRC)
	}
	return cc.waitCh
}

func (cc *clientConsumer) fireWait() {
	cc.wmu.Lock()
	if cc.waitCh != nil {
		close(cc.waitCh)
		cc.waitCh = nil
	}
	cc.wmu.Unlock()
}

func (cc *clientConsumer) waitWatcher(rc *rconn) {
	defer rc.close()
	defer cc.fireWait()
	var epoch uint64
	primed := false
	for !cc.closed.Load() {
		var cur uint64
		var topicDone bool
		wait := uint64(watchPollMs)
		if !primed {
			wait = 0 // first round just learns the current epoch
		}
		err := rc.call(wait, func(req []byte) []byte {
			req = append(req, opWait)
			req = appendStr(req, cc.topic)
			req = appendUvarint(req, epoch)
			return appendUvarint(req, wait)
		}, func(r *wireReader) error {
			flags := r.byteVal()
			cur = r.uvarint()
			topicDone = flags&1 != 0
			return r.err
		})
		if err != nil {
			if rc.isClosed() || errors.Is(err, mq.ErrClosed) {
				cc.topicClosed.Store(errors.Is(err, mq.ErrClosed))
				return
			}
			// Transient: wake waiters (spurious wakeups are allowed) and
			// retry after a beat rather than spinning on a dead daemon.
			cc.fireWait()
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if topicDone {
			cc.topicClosed.Store(true)
			return
		}
		if primed && cur != epoch {
			cc.fireWait()
		}
		epoch = cur
		primed = true
	}
}

// RebalanceChan returns a channel closed at the group's next membership
// change, driven by a background watcher long-polling the generation.
// Standalone consumers get a channel that never closes.
func (cc *clientConsumer) RebalanceChan() <-chan struct{} {
	if cc.group == "" {
		return make(chan struct{})
	}
	cc.rmu.Lock()
	defer cc.rmu.Unlock()
	if cc.rebCh == nil {
		cc.rebCh = make(chan struct{})
	}
	if !cc.rebStarted {
		cc.rebStarted = true
		cc.rebRC = cc.cl.newRconn(nil)
		// Prime the baseline generation BEFORE the call returns. The
		// contract is "closed at the group's NEXT membership change": if the
		// watcher learned its baseline on its own first round, a join
		// landing between this call and that round would be absorbed into
		// the baseline and the wakeup lost. (WaitChan tolerates the
		// equivalent lag because its contract allows it; this one does not.)
		gen, primed := cc.rebBaseline(cc.rebRC)
		go cc.rebWatcher(cc.rebRC, gen, primed)
	}
	return cc.rebCh
}

// rebBaseline reads the handle's current group generation over rc with a
// zero wait. primed is false when the read failed; the watcher then primes
// on its own first round — best effort, since without a baseline there is
// nothing to diff against anyway.
func (cc *clientConsumer) rebBaseline(rc *rconn) (gen uint64, primed bool) {
	err := rc.call(0, func(req []byte) []byte {
		req = append(req, opRebalanceWait)
		req = appendUvarint(req, cc.handle.Load())
		req = appendUvarint(req, ^uint64(0))
		return appendUvarint(req, 0)
	}, func(r *wireReader) error {
		gen = r.uvarint()
		return r.err
	})
	if err != nil {
		return ^uint64(0), false
	}
	return gen, true
}

func (cc *clientConsumer) fireReb() {
	cc.rmu.Lock()
	if cc.rebCh != nil {
		close(cc.rebCh)
		cc.rebCh = nil
	}
	cc.rmu.Unlock()
}

func (cc *clientConsumer) rebWatcher(rc *rconn, gen uint64, primed bool) {
	defer rc.close()
	for !cc.closed.Load() {
		var cur uint64
		wait := uint64(watchPollMs)
		if !primed {
			wait = 0
		}
		err := rc.call(wait, func(req []byte) []byte {
			req = append(req, opRebalanceWait)
			req = appendUvarint(req, cc.handle.Load())
			req = appendUvarint(req, gen)
			return appendUvarint(req, wait)
		}, func(r *wireReader) error {
			cur = r.uvarint()
			return r.err
		})
		if err != nil {
			if rc.isClosed() || errors.Is(err, mq.ErrClosed) {
				return
			}
			// A stale handle after a main-conn reconnect lands here too:
			// back off, re-read the (possibly refreshed) handle, retry. The
			// generation moved during the reconnect, so the next successful
			// round reports the change — no wakeup is lost.
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if primed && cur != gen {
			cc.fireReb()
		}
		gen = cur
		primed = true
	}
}

// Close releases the consumer: the server-side handle is closed
// (best-effort — a dropped conn reaps it anyway), the group membership
// leaves, and local waiters are woken.
func (cc *clientConsumer) Close() {
	if cc.closed.Swap(true) {
		return
	}
	_ = cc.rc.call(0, func(req []byte) []byte {
		req = append(req, opCloseConsumer)
		return appendUvarint(req, cc.handle.Load())
	}, nil)
	cc.rc.close()
	cc.wmu.Lock()
	wrc := cc.waitRC
	cc.wmu.Unlock()
	if wrc != nil {
		wrc.close()
	}
	cc.rmu.Lock()
	rrc := cc.rebRC
	cc.rmu.Unlock()
	if rrc != nil {
		rrc.close()
	}
	cc.fireWait()
	cc.fireReb()
}
