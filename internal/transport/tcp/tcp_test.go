package tcp_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/transport"
	"github.com/approxiot/approxiot/internal/transport/conformance"
	"github.com/approxiot/approxiot/internal/transport/tcp"
)

// harness is one daemon + one client over a real TCP loopback socket.
type harness struct {
	broker *mq.Broker
	srv    *tcp.Server
	client *tcp.Client
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	b := mq.NewBroker()
	srv, err := tcp.Listen("127.0.0.1:0", transport.WrapBroker(b))
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	cl, err := tcp.Dial(srv.Addr().String())
	if err != nil {
		srv.Close()
		t.Fatalf("Dial: %v", err)
	}
	h := &harness{broker: b, srv: srv, client: cl}
	t.Cleanup(func() {
		h.client.Close()
		h.srv.Close()
		h.broker.Close()
	})
	return h
}

// restartServer bounces the daemon on the same address with the same
// backing broker — the "broker process restarted, state intact" scenario
// the reconnect path exists for.
func (h *harness) restartServer(t *testing.T) {
	t.Helper()
	addr := h.srv.Addr().String()
	if err := h.srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	var err error
	for i := 0; i < 50; i++ {
		h.srv, err = tcp.Listen(addr, transport.WrapBroker(h.broker))
		if err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("rebind %s: %v", addr, err)
}

// TestTCPConformance holds the TCP backend to the same contract the
// in-memory backend defines — the tentpole's core acceptance gate.
func TestTCPConformance(t *testing.T) {
	conformance.Run(t, func(t *testing.T) conformance.Backend {
		h := newHarness(t)
		return conformance.Backend{
			Bus:             h.client,
			ShutdownBackend: h.broker.Close,
		}
	})
}

// TestReconnectStandaloneSeek: a standalone consumer survives a daemon
// bounce without re-delivering or losing records — the client re-opens its
// server-side handle and seeks it to the exact next offsets.
func TestReconnectStandaloneSeek(t *testing.T) {
	h := newHarness(t)
	bus := h.client
	if err := bus.CreateTopic("t", 2, 0); err != nil {
		t.Fatal(err)
	}
	p := bus.NewProducer()
	for i := 0; i < 10; i++ {
		if _, err := p.SendTo("t", i%2, nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := bus.NewConsumer("t")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	seen := map[byte]int{}
	got := 0
	for got < 5 {
		recs, err := c.TryPoll(3)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			seen[r.Value[0]]++
			got++
		}
	}

	h.restartServer(t)

	deadline := time.Now().Add(10 * time.Second)
	for got < 10 && time.Now().Before(deadline) {
		recs, err := c.TryPoll(4)
		if err != nil {
			// At most the first post-bounce call may fail while the single
			// retry lands; anything persistent is a real failure.
			continue
		}
		for _, r := range recs {
			seen[r.Value[0]]++
			got++
		}
	}
	if got != 10 {
		t.Fatalf("consumed %d records across the bounce, want 10", got)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("record %d delivered %d times across reconnect", v, n)
		}
	}
	if rc := h.client.Counters().Reconnects; rc < 1 {
		t.Fatalf("Reconnects = %d, want >= 1 after a daemon bounce", rc)
	}
}

// TestReconnectGroupResume: a group consumer rejoins after a bounce and
// resumes from the group's committed offsets (auto-commit-at-fetch means
// nothing fetched before the bounce is re-delivered).
func TestReconnectGroupResume(t *testing.T) {
	h := newHarness(t)
	bus := h.client
	if err := bus.CreateTopic("t", 2, 0); err != nil {
		t.Fatal(err)
	}
	p := bus.NewProducer()
	for i := 0; i < 20; i++ {
		if _, err := p.SendTo("t", i%2, nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := bus.NewGroupConsumer("t", "g")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	seen := map[byte]int{}
	drainInto := func(n int) {
		deadline := time.Now().Add(10 * time.Second)
		count := 0
		for count < n && time.Now().Before(deadline) {
			recs, err := c.TryPoll(4)
			if err != nil {
				continue
			}
			for _, r := range recs {
				seen[r.Value[0]]++
				count++
			}
		}
		if count != n {
			t.Fatalf("drained %d, want %d", count, n)
		}
	}
	drainInto(8)
	h.restartServer(t)
	drainInto(12)

	if len(seen) != 20 {
		t.Fatalf("saw %d distinct records, want 20", len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("record %d delivered %d times across group reconnect", v, n)
		}
	}
}

// TestProducerReconnect: a producer's send after a daemon bounce succeeds
// via the transparent redial.
func TestProducerReconnect(t *testing.T) {
	h := newHarness(t)
	bus := h.client
	if err := bus.CreateTopic("t", 1, 0); err != nil {
		t.Fatal(err)
	}
	p := bus.NewProducer()
	if _, _, err := p.Send("t", nil, []byte("before")); err != nil {
		t.Fatal(err)
	}
	h.restartServer(t)
	if _, _, err := p.Send("t", nil, []byte("after")); err != nil {
		t.Fatalf("send after bounce: %v", err)
	}
	tp, err := h.broker.Topic("t")
	if err != nil {
		t.Fatal(err)
	}
	if hw := tp.HighWatermark(0); hw != 2 {
		t.Fatalf("high watermark = %d, want 2", hw)
	}
}

// TestCounters: wire-byte accounting moves on both ends and send/poll
// error counters stay zero on a clean run.
func TestCounters(t *testing.T) {
	h := newHarness(t)
	bus := h.client
	if err := bus.CreateTopic("t", 1, 0); err != nil {
		t.Fatal(err)
	}
	p := bus.NewProducer()
	payload := make([]byte, 1024)
	for i := 0; i < 32; i++ {
		if _, _, err := p.Send("t", nil, payload); err != nil {
			t.Fatal(err)
		}
	}
	c, err := bus.NewConsumer("t")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	total := 0
	for total < 32 {
		recs, err := c.Poll(ctx, 16)
		if err != nil {
			t.Fatal(err)
		}
		total += len(recs)
	}

	ctr := h.client.Counters()
	if ctr.BytesOut < 32*1024 {
		t.Fatalf("client BytesOut = %d, below the payload floor", ctr.BytesOut)
	}
	if ctr.BytesIn < 32*1024 {
		t.Fatalf("client BytesIn = %d, below the payload floor", ctr.BytesIn)
	}
	if ctr.SendErrors != 0 || ctr.PollErrors != 0 {
		t.Fatalf("clean run counted errors: %+v", ctr)
	}
	sctr := h.srv.Counters()
	if sctr.BytesIn < 32*1024 || sctr.BytesOut < 32*1024 {
		t.Fatalf("server byte counters %+v below the payload floor", sctr)
	}
}

// TestPollHonorsContext: a blocking poll on an idle topic returns with the
// caller's context error within a long-poll round.
func TestPollHonorsContext(t *testing.T) {
	h := newHarness(t)
	bus := h.client
	if err := bus.CreateTopic("t", 1, 0); err != nil {
		t.Fatal(err)
	}
	c, err := bus.NewConsumer("t")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Poll(ctx, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Poll on idle topic = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Poll overshot its context by %v", elapsed)
	}
}

// TestDialFailsFast: dialing a dead address errors instead of wedging.
func TestDialFailsFast(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := tcp.Dial(addr); err == nil {
		t.Fatal("Dial to closed address succeeded")
	}
}
