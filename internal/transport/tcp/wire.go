// Package tcp is the network transport backend: a zero-dependency,
// length-prefixed binary protocol that runs the transport.Bus surface over
// TCP, so the tree's tiers can run as separate OS processes on separate
// machines — the deployment shape the paper's prototype obtained from
// Kafka.
//
// One broker daemon (Serve) hosts any transport.Bus — in practice the
// in-memory Mem backend — and any number of client processes (Dial) mount
// it as their own Bus. Every consumer-group semantic the in-memory broker
// implements (partition dealing, generation-fenced auto-commits, stale-
// owner fencing, rebalance on join/leave) is inherited, not re-implemented:
// the daemon holds a real server-side consumer per client handle, so the
// fencing happens where the offsets live. Watermarks ride each record's
// frame bit-for-bit, which carries the event-time machinery — per-chain
// minimums, keepalives, the end-of-stream broadcast — across the wire
// unchanged.
//
// The framing follows the repo codec's append-style marshaling (uvarint
// lengths, little-endian fixints, appends into reusable scratch): requests
// and responses are [u32 little-endian frame length][frame], where a
// request frame is [op byte][operands] and a response frame is [status
// byte][optional error text][result]. Known mq sentinel errors cross the
// wire as dedicated status codes so errors.Is keeps working remotely.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/approxiot/approxiot/internal/mq"
)

// Protocol ops (request frame byte 0).
const (
	opCreateTopic byte = iota + 1
	opTopicParts
	opSend
	opSendTo
	opSendBatch
	opOpenConsumer
	opFetch
	opMeta
	opCommitted
	opSeek
	opCloseConsumer
	opGroupLag
	opGroupCommitted
	opFetchAt
	opWait
	opRebalanceWait
)

// Response status codes (response frame byte 0). Non-zero statuses carry an
// error message string; the sentinel codes additionally map back onto the
// mq errors so errors.Is works across the wire.
const (
	stOK byte = iota
	stErr
	stClosed
	stUnknownTopic
	stOutOfRange
	stNotSubscribed
	stTopicExists
	stNoPartitions
	stUnknownHandle
)

// errUnknownHandle reports an op against a consumer handle the server no
// longer has — the owning connection dropped (the server reaped it) or the
// handle was closed. Clients recover by re-opening.
var errUnknownHandle = errors.New("tcp: unknown consumer handle")

// maxFrame bounds a single frame. Fetch batches are bounded by the poll max
// (hundreds of records of modest payloads), so anything near this size is a
// corrupt length prefix, not a legitimate frame.
const maxFrame = 64 << 20

// statusOf maps an error to its wire status.
func statusOf(err error) byte {
	switch {
	case errors.Is(err, mq.ErrClosed):
		return stClosed
	case errors.Is(err, mq.ErrUnknownTopic):
		return stUnknownTopic
	case errors.Is(err, mq.ErrOutOfRange):
		return stOutOfRange
	case errors.Is(err, mq.ErrNotSubscribed):
		return stNotSubscribed
	case errors.Is(err, mq.ErrTopicExists):
		return stTopicExists
	case errors.Is(err, mq.ErrNoPartitions):
		return stNoPartitions
	case errors.Is(err, errUnknownHandle):
		return stUnknownHandle
	default:
		return stErr
	}
}

// errOf reconstructs an error from a wire status + message. The sentinel
// statuses wrap the matching mq error so errors.Is holds on the client side
// exactly as it would in-process.
func errOf(status byte, msg string) error {
	if msg == "" {
		msg = "remote error"
	}
	switch status {
	case stClosed:
		return fmt.Errorf("%w: %s", mq.ErrClosed, msg)
	case stUnknownTopic:
		return fmt.Errorf("%w: %s", mq.ErrUnknownTopic, msg)
	case stOutOfRange:
		return fmt.Errorf("%w: %s", mq.ErrOutOfRange, msg)
	case stNotSubscribed:
		return fmt.Errorf("%w: %s", mq.ErrNotSubscribed, msg)
	case stTopicExists:
		return fmt.Errorf("%w: %s", mq.ErrTopicExists, msg)
	case stNoPartitions:
		return fmt.Errorf("%w: %s", mq.ErrNoPartitions, msg)
	case stUnknownHandle:
		return fmt.Errorf("%w: %s", errUnknownHandle, msg)
	default:
		return fmt.Errorf("tcp: %s", msg)
	}
}

// ---- append-style encoders (the codec idiom: no intermediate buffers) ----

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// appendTime encodes an instant as a zero flag + unix nanoseconds. The flag
// exists because the zero time's UnixNano is not representable round-trip —
// and zero-ness is semantic (a zero watermark At is a keepalive).
func appendTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return binary.LittleEndian.AppendUint64(dst, uint64(t.UnixNano()))
}

func appendWatermark(dst []byte, wm mq.Watermark) []byte {
	dst = appendStr(dst, wm.From)
	return appendTime(dst, wm.At)
}

// appendRecord encodes one full record (fetch responses).
func appendRecord(dst []byte, r *mq.Record) []byte {
	dst = appendBytes(dst, r.Key)
	dst = appendBytes(dst, r.Value)
	dst = appendTime(dst, r.Ts)
	dst = appendWatermark(dst, r.Watermark)
	dst = binary.AppendUvarint(dst, uint64(r.Partition))
	dst = binary.AppendUvarint(dst, uint64(r.Offset))
	return dst
}

// ---- cursor-style decoder with a latched error ----

// wireReader walks a frame; the first malformed field latches err and every
// later read returns zero values, so call sites stay linear.
type wireReader struct {
	buf []byte
	off int
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = errors.New("tcp: truncated frame")
	}
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) byteVal() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// bytesVal returns a view into the frame — NOT a copy. Callers that retain
// the bytes past the frame's lifetime must copy (see clientConsumer's
// fetch, which materializes records into one fresh block per batch).
func (r *wireReader) bytesVal() []byte {
	n := int(r.uvarint())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

func (r *wireReader) str() string { return string(r.bytesVal()) }

func (r *wireReader) timeVal() time.Time {
	flag := r.byteVal()
	if r.err != nil || flag == 0 {
		return time.Time{}
	}
	if r.off+8 > len(r.buf) {
		r.fail()
		return time.Time{}
	}
	n := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return time.Unix(0, int64(n))
}

func (r *wireReader) watermark() mq.Watermark {
	return mq.Watermark{From: r.str(), At: r.timeVal()}
}

// record decodes one record; Key/Value alias the frame buffer.
func (r *wireReader) record() mq.Record {
	var rec mq.Record
	rec.Key = r.bytesVal()
	rec.Value = r.bytesVal()
	rec.Ts = r.timeVal()
	rec.Watermark = r.watermark()
	rec.Partition = int(r.uvarint())
	rec.Offset = int64(r.uvarint())
	return rec
}

// ---- framing ----

// writeFrame writes [len][frame] with a single Write call (scratch holds
// the length prefix + frame so short writes can't interleave across
// concurrent connections). Returns bytes written.
func writeFrame(w io.Writer, scratch, frame []byte) (int, []byte, error) {
	scratch = scratch[:0]
	scratch = binary.LittleEndian.AppendUint32(scratch, uint32(len(frame)))
	scratch = append(scratch, frame...)
	n, err := w.Write(scratch)
	return n, scratch, err
}

// readFrame reads one frame into buf (grown as needed) and returns it plus
// the total wire bytes consumed.
func readFrame(r io.Reader, buf []byte) ([]byte, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return buf, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return buf, 4, fmt.Errorf("tcp: frame length %d exceeds limit", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf, 4, err
	}
	return buf, 4 + int(n), nil
}
