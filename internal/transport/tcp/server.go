package tcp

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/transport"
)

// maxWaitMs caps how long a single blocking request (fetch long-poll, wait,
// rebalance-wait) may park server-side. Clients re-issue; the cap bounds how
// long a dispatch loop can sit in one request after the peer vanishes.
const maxWaitMs = 30_000

// counters is the shared atomic backing for transport.Counters. Both the
// server and every client handle own one; conns account into it directly.
type counters struct {
	bytesOut, bytesIn    atomic.Int64
	reconnects           atomic.Int64
	sendErrs, pollErrs   atomic.Int64
}

func (c *counters) snapshot() transport.Counters {
	return transport.Counters{
		BytesOut:   c.bytesOut.Load(),
		BytesIn:    c.bytesIn.Load(),
		Reconnects: c.reconnects.Load(),
		SendErrors: c.sendErrs.Load(),
		PollErrors: c.pollErrs.Load(),
	}
}

// Server is the broker daemon: it serves a transport.Bus (typically the
// in-memory Mem backend) to remote clients over the wire protocol. The
// server holds a real server-side consumer per client consumer handle, so
// group membership, generation fencing, and auto-commit-at-fetch all run
// against the backing bus with in-process semantics; the wire only moves
// records and results.
type Server struct {
	bus transport.Bus
	ln  net.Listener

	// baseCtx is cancelled by Close so blocking requests (long-poll fetch,
	// opWait) return promptly instead of riding out their waitMs.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	handles map[uint64]*serverHandle
	nextID  uint64
	closed  bool

	ctr counters
	wg  sync.WaitGroup
}

// serverHandle is one client consumer: the server-side consumer doing the
// real work plus the owning connection (for teardown when the conn drops).
type serverHandle struct {
	c     transport.Consumer
	owner net.Conn
}

// Serve starts serving bus on ln and returns immediately. The server does
// not own bus: Close stops serving but leaves the bus (and its topics)
// intact, so a daemon owner decides the shutdown order.
func Serve(ln net.Listener, bus transport.Bus) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		bus:     bus,
		ln:      ln,
		baseCtx: ctx,
		cancel:  cancel,
		conns:   make(map[net.Conn]struct{}),
		handles: make(map[uint64]*serverHandle),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Listen is Serve over a fresh TCP listener on addr (e.g. ":9090" or
// "127.0.0.1:0" for an ephemeral test port — read it back via Addr).
func Listen(addr string, bus transport.Bus) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, bus), nil
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Counters returns the server's wire-traffic counters (all conns summed).
func (s *Server) Counters() transport.Counters { return s.ctr.snapshot() }

// Close stops accepting, drops every connection, closes the server-side
// consumers opened on clients' behalf, and waits for the conn handlers to
// drain. The backing bus is left running.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cancel()
	err := s.ln.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// connState is the per-connection dispatch state. Requests on one conn are
// strictly serial (request, response, request, ...), so the scratch buffers
// here are single-owner and recycle across frames.
type connState struct {
	srv  *Server
	conn net.Conn

	producer transport.Producer
	owned    map[uint64]struct{}         // consumer handles this conn opened
	waiters  map[string]transport.Consumer // opWait epoch consumers, per topic

	fetchScratch []mq.Record
	batchScratch []mq.Record
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	cs := &connState{
		srv:     s,
		conn:    conn,
		owned:   make(map[uint64]struct{}),
		waiters: make(map[string]transport.Consumer),
	}
	defer cs.teardown()
	var reqBuf, respBuf, scratch []byte
	for {
		req, n, err := readFrame(conn, reqBuf)
		reqBuf = req
		s.ctr.bytesIn.Add(int64(n))
		if err != nil {
			return
		}
		respBuf = s.dispatch(cs, req, respBuf[:0])
		n, scratch, err = writeFrame(conn, scratch, respBuf)
		s.ctr.bytesOut.Add(int64(n))
		if err != nil {
			return
		}
	}
}

func (cs *connState) teardown() {
	cs.conn.Close()
	s := cs.srv
	s.mu.Lock()
	delete(s.conns, cs.conn)
	var dead []transport.Consumer
	for id := range cs.owned {
		if h, ok := s.handles[id]; ok {
			dead = append(dead, h.c)
			delete(s.handles, id)
		}
	}
	s.mu.Unlock()
	// Close outside the lock: group members leaving takes the group lock.
	for _, c := range dead {
		c.Close()
	}
	for _, c := range cs.waiters {
		c.Close()
	}
}

// register files a new server-side consumer under a fresh handle id.
func (s *Server) register(cs *connState, c transport.Consumer) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	s.handles[id] = &serverHandle{c: c, owner: cs.conn}
	cs.owned[id] = struct{}{}
	return id
}

// lookup resolves a handle id to its consumer; nil if unknown (closed, or
// reaped when its conn dropped).
func (s *Server) lookup(id uint64) transport.Consumer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.handles[id]; ok {
		return h.c
	}
	return nil
}

func (s *Server) unregister(cs *connState, id uint64) transport.Consumer {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(cs.owned, id)
	if h, ok := s.handles[id]; ok {
		delete(s.handles, id)
		return h.c
	}
	return nil
}

// appendErr encodes a failure response: status byte + message.
func appendErr(resp []byte, err error) []byte {
	resp = append(resp, statusOf(err))
	return appendStr(resp, err.Error())
}

// dispatch decodes one request frame and appends the response onto resp.
func (s *Server) dispatch(cs *connState, req, resp []byte) []byte {
	r := &wireReader{buf: req}
	op := r.byteVal()
	switch op {
	case opCreateTopic:
		name := r.str()
		parts := int(r.uvarint())
		retain := int(r.uvarint())
		if r.err != nil {
			return appendErr(resp, r.err)
		}
		if err := s.bus.CreateTopic(name, parts, retain); err != nil {
			return appendErr(resp, err)
		}
		return append(resp, stOK)

	case opTopicParts:
		name := r.str()
		if r.err != nil {
			return appendErr(resp, r.err)
		}
		n, err := s.bus.TopicPartitions(name)
		if err != nil {
			return appendErr(resp, err)
		}
		resp = append(resp, stOK)
		return appendUvarint(resp, uint64(n))

	case opSend:
		topic := r.str()
		key, value := copyKV(r.bytesVal(), r.bytesVal())
		wm := r.watermark()
		if r.err != nil {
			return appendErr(resp, r.err)
		}
		p, off, err := cs.prod().SendWatermarked(topic, key, value, wm)
		if err != nil {
			return appendErr(resp, err)
		}
		resp = append(resp, stOK)
		resp = appendUvarint(resp, uint64(p))
		return appendUvarint(resp, uint64(off))

	case opSendTo:
		topic := r.str()
		part := int(r.uvarint())
		key, value := copyKV(r.bytesVal(), r.bytesVal())
		wm := r.watermark()
		if r.err != nil {
			return appendErr(resp, r.err)
		}
		off, err := cs.prod().SendToWatermarked(topic, part, key, value, wm)
		if err != nil {
			return appendErr(resp, err)
		}
		resp = append(resp, stOK)
		return appendUvarint(resp, uint64(off))

	case opSendBatch:
		return s.handleSendBatch(cs, r, resp)

	case opOpenConsumer:
		topic := r.str()
		group := r.str()
		if r.err != nil {
			return appendErr(resp, r.err)
		}
		var c transport.Consumer
		var err error
		if group == "" {
			c, err = s.bus.NewConsumer(topic)
		} else {
			c, err = s.bus.NewGroupConsumer(topic, group)
		}
		if err != nil {
			return appendErr(resp, err)
		}
		id := s.register(cs, c)
		resp = append(resp, stOK)
		return appendUvarint(resp, id)

	case opFetch:
		return s.handleFetch(cs, r, resp)

	case opMeta:
		id := r.uvarint()
		if r.err != nil {
			return appendErr(resp, r.err)
		}
		c := s.lookup(id)
		if c == nil {
			return appendErr(resp, errUnknownHandle)
		}
		var flags byte
		if c.TopicClosed() {
			flags |= 1
		}
		assign := c.Assignment()
		resp = append(resp, stOK, flags)
		resp = appendUvarint(resp, uint64(c.Lag()))
		resp = appendUvarint(resp, uint64(c.Generation()))
		resp = appendUvarint(resp, uint64(len(assign)))
		for _, p := range assign {
			resp = appendUvarint(resp, uint64(p))
		}
		return resp

	case opCommitted:
		id := r.uvarint()
		part := int(r.uvarint())
		if r.err != nil {
			return appendErr(resp, r.err)
		}
		c := s.lookup(id)
		if c == nil {
			return appendErr(resp, errUnknownHandle)
		}
		resp = append(resp, stOK)
		return appendUvarint(resp, uint64(c.Committed(part)))

	case opSeek:
		id := r.uvarint()
		part := int(r.uvarint())
		off := int64(r.uvarint())
		if r.err != nil {
			return appendErr(resp, r.err)
		}
		c := s.lookup(id)
		if c == nil {
			return appendErr(resp, errUnknownHandle)
		}
		if err := c.Seek(part, off); err != nil {
			return appendErr(resp, err)
		}
		return append(resp, stOK)

	case opCloseConsumer:
		id := r.uvarint()
		if r.err != nil {
			return appendErr(resp, r.err)
		}
		// Idempotent: closing an unknown (already-reaped) handle succeeds.
		if c := s.unregister(cs, id); c != nil {
			c.Close()
		}
		return append(resp, stOK)

	case opGroupLag:
		topic := r.str()
		group := r.str()
		if r.err != nil {
			return appendErr(resp, r.err)
		}
		lag, err := s.bus.GroupLag(topic, group)
		if err != nil {
			return appendErr(resp, err)
		}
		resp = append(resp, stOK)
		return appendUvarint(resp, uint64(lag))

	case opGroupCommitted:
		topic := r.str()
		group := r.str()
		if r.err != nil {
			return appendErr(resp, r.err)
		}
		offs, err := s.bus.GroupCommitted(topic, group)
		if err != nil {
			return appendErr(resp, err)
		}
		resp = append(resp, stOK)
		resp = appendUvarint(resp, uint64(len(offs)))
		for _, off := range offs {
			resp = appendUvarint(resp, uint64(off))
		}
		return resp

	case opFetchAt:
		topic := r.str()
		part := int(r.uvarint())
		from := int64(r.uvarint())
		max := int(r.uvarint())
		if r.err != nil {
			return appendErr(resp, r.err)
		}
		recs, err := s.bus.FetchInto(cs.fetchScratch[:0], topic, part, from, max)
		if err != nil {
			cs.fetchScratch = recs[:0]
			return appendErr(resp, err)
		}
		resp = append(resp, stOK)
		resp = appendUvarint(resp, uint64(len(recs)))
		for i := range recs {
			resp = appendRecord(resp, &recs[i])
		}
		cs.fetchScratch = recs[:0]
		return resp

	case opWait:
		return s.handleWait(cs, r, resp)

	case opRebalanceWait:
		return s.handleRebalanceWait(r, resp)

	default:
		return appendErr(resp, errors.New("tcp: unknown op"))
	}
}

func (cs *connState) prod() transport.Producer {
	if cs.producer == nil {
		cs.producer = cs.srv.bus.NewProducer()
	}
	return cs.producer
}

// handleSendBatch decodes a batch, copies payloads out of the request frame
// into one fresh block (the backing bus retains Key/Value bytes, and the
// frame buffer is recycled on the next request), and appends it.
func (s *Server) handleSendBatch(cs *connState, r *wireReader, resp []byte) []byte {
	topic := r.str()
	n := int(r.uvarint())
	recs := cs.batchScratch[:0]
	total := 0
	for i := 0; i < n && r.err == nil; i++ {
		var rec mq.Record
		rec.Key = r.bytesVal()
		rec.Value = r.bytesVal()
		rec.Watermark = r.watermark()
		total += len(rec.Key) + len(rec.Value)
		recs = append(recs, rec)
	}
	cs.batchScratch = recs
	if r.err != nil {
		return appendErr(resp, r.err)
	}
	block := make([]byte, 0, total)
	for i := range recs {
		block, recs[i].Key = blockCopy(block, recs[i].Key)
		block, recs[i].Value = blockCopy(block, recs[i].Value)
	}
	err := cs.prod().SendBatch(topic, recs)
	// Drop the aliases into the sent block before recycling the scratch.
	for i := range recs {
		recs[i] = mq.Record{}
	}
	cs.batchScratch = recs[:0]
	if err != nil {
		return appendErr(resp, err)
	}
	return append(resp, stOK)
}

// blockCopy appends b onto block (whose capacity is pre-sized, so no
// reallocation splits the batch) and returns the copied view.
func blockCopy(block, b []byte) ([]byte, []byte) {
	start := len(block)
	block = append(block, b...)
	return block, block[start:len(block):len(block)]
}

// copyKV materializes a request frame's key/value views into one fresh
// block. The backing bus retains produced bytes, and the frame buffer is
// recycled on the next request — handing it aliases would let later
// requests rewrite the log in place (the boundary's ownership rule, honored
// on the server's side of the wire).
func copyKV(key, value []byte) ([]byte, []byte) {
	block := make([]byte, 0, len(key)+len(value))
	block, key = blockCopy(block, key)
	_, value = blockCopy(block, value)
	return key, value
}

// handleFetch runs one poll round against the handle's server-side
// consumer: non-blocking when waitMs is 0, otherwise parked up to waitMs
// (capped) in a real blocking PollInto so the client's long-poll inherits
// the broker's wakeup machinery instead of spinning.
func (s *Server) handleFetch(cs *connState, r *wireReader, resp []byte) []byte {
	id := r.uvarint()
	max := int(r.uvarint())
	waitMs := r.uvarint()
	if r.err != nil {
		return appendErr(resp, r.err)
	}
	c := s.lookup(id)
	if c == nil {
		return appendErr(resp, errUnknownHandle)
	}
	dst := cs.fetchScratch[:0]
	var recs []mq.Record
	var err error
	if waitMs == 0 {
		recs, err = c.TryPollInto(dst, max)
	} else {
		ctx, cancel := context.WithTimeout(s.baseCtx, time.Duration(min(waitMs, maxWaitMs))*time.Millisecond)
		recs, err = c.PollInto(ctx, dst, max)
		cancel()
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// Long-poll timeout (or server shutdown): an empty round, not an
			// error — the client decides whether to re-issue.
			recs, err = dst, nil
		}
	}
	if err != nil {
		cs.fetchScratch = recs[:0]
		return appendErr(resp, err)
	}
	var flags byte
	if c.TopicClosed() {
		flags |= 1
	}
	resp = append(resp, stOK, flags)
	resp = appendUvarint(resp, uint64(len(recs)))
	for i := range recs {
		resp = appendRecord(resp, &recs[i])
	}
	cs.fetchScratch = recs[:0]
	return resp
}

// handleWait is the topic-level long-poll behind client WaitChans. The
// epoch is the Lag() of a conn-scoped, never-polled standalone consumer on
// the topic: its positions are frozen at creation, so the value is a
// monotone count of appends since — a change means "new records may be
// available", exactly the WaitChan contract. Handle-free, so one watcher
// conn serves every consumer a client process has on the topic.
func (s *Server) handleWait(cs *connState, r *wireReader, resp []byte) []byte {
	topic := r.str()
	epoch := r.uvarint()
	waitMs := r.uvarint()
	if r.err != nil {
		return appendErr(resp, r.err)
	}
	c, ok := cs.waiters[topic]
	if !ok {
		var err error
		c, err = s.bus.NewConsumer(topic)
		if err != nil {
			return appendErr(resp, err)
		}
		cs.waiters[topic] = c
	}
	deadline := time.Now().Add(time.Duration(min(waitMs, maxWaitMs)) * time.Millisecond)
	for {
		wait := c.WaitChan() // arm before reading the epoch: no lost wakeups
		cur := uint64(c.Lag())
		closed := c.TopicClosed()
		remaining := time.Until(deadline)
		if cur != epoch || closed || remaining <= 0 {
			var flags byte
			if closed {
				flags |= 1
			}
			resp = append(resp, stOK, flags)
			return appendUvarint(resp, cur)
		}
		timer := time.NewTimer(remaining)
		select {
		case <-wait:
		case <-timer.C:
		case <-s.baseCtx.Done():
		}
		timer.Stop()
	}
}

// handleRebalanceWait long-polls a handle's group generation: it returns
// as soon as the generation differs from the client's, or at the deadline.
func (s *Server) handleRebalanceWait(r *wireReader, resp []byte) []byte {
	id := r.uvarint()
	gen := r.uvarint()
	waitMs := r.uvarint()
	if r.err != nil {
		return appendErr(resp, r.err)
	}
	c := s.lookup(id)
	if c == nil {
		return appendErr(resp, errUnknownHandle)
	}
	deadline := time.Now().Add(time.Duration(min(waitMs, maxWaitMs)) * time.Millisecond)
	for {
		ch := c.RebalanceChan() // arm before reading the generation
		cur := uint64(c.Generation())
		remaining := time.Until(deadline)
		if cur != gen || remaining <= 0 {
			resp = append(resp, stOK)
			return appendUvarint(resp, cur)
		}
		timer := time.NewTimer(remaining)
		select {
		case <-ch:
		case <-timer.C:
		case <-s.baseCtx.Done():
		}
		timer.Stop()
	}
}
