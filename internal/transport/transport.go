// Package transport is the pluggable message-bus boundary of the live
// dataflow: the interface the tree's runtimes, sessions, and valves consume
// instead of the concrete in-memory broker. The paper's ApproxIoT prototype
// obtains this substrate from Apache Kafka [15]; this repo grew it first as
// the in-memory internal/mq broker (the reference and simulation backend,
// wrapped here by Mem) and now as a real network backend
// (internal/transport/tcp) so a deployment tree can run as separate OS
// processes on separate machines.
//
// The interface is carved from the mq API surface the rest of the system
// actually uses — topics/partitions, keyed producers with batched sends and
// piggybacked event-time watermarks, consumer groups with generation-fenced
// auto-commits and rebalance notification, blocking polls with caller-owned
// scratch, and group-lag probes for ingest backpressure — nothing more. The
// concrete *mq.Producer and *mq.Consumer satisfy Producer and Consumer
// structurally, so the in-memory backend is a zero-adapter wrapper and its
// semantics remain the executable specification every other backend's
// conformance run is held to (internal/transport/conformance).
//
// Buffer-ownership rule across the boundary: a backend retains the Key and
// Value bytes handed to a producer send (the in-memory broker aliases them
// in its partition logs; a network backend serializes them, but callers
// must not assume which). Callers therefore never mutate sent bytes —
// materialize into a fresh block per flush, exactly as the core encoder
// does. Symmetrically, records returned by a poll stay valid after the
// next poll; only the scratch slice header is recycled by the caller.
package transport

import (
	"context"

	"github.com/approxiot/approxiot/internal/mq"
)

// Record is one message on the bus — the mq record, reused verbatim so the
// in-memory backend moves records without copying and every backend shares
// one codec-facing shape. Key/Value are opaque payload bytes; Watermark is
// the piggybacked event-time low watermark; Partition/Offset locate the
// record once appended.
type Record = mq.Record

// Watermark is the piggybacked event-time low watermark (see mq.Watermark
// for the From/At semantics and the keepalive convention). Backends carry
// it on every record, bit-for-bit: event-time correctness depends on
// watermarks never being reordered against their data.
type Watermark = mq.Watermark

// Producer appends records to the bus's topics. Implementations choose
// partitions exactly as the in-memory broker does: key-hash for non-empty
// keys (same key → same partition, preserving per-sub-stream order),
// round-robin otherwise, sticky per consecutive-equal-key run in SendBatch.
type Producer interface {
	// Send appends value under key and returns the record's position.
	Send(topic string, key, value []byte) (partition int, offset int64, err error)
	// SendWatermarked is Send with an event-time low watermark piggybacked
	// on the record.
	SendWatermarked(topic string, key, value []byte, wm Watermark) (partition int, offset int64, err error)
	// SendBatch appends a batch in one shot — the amortization the hot path
	// is built on. Each record's Key, Value, and Watermark are taken as
	// given; Ts/Partition/Offset are assigned by the backend. recs may be
	// written in place but is not retained; Values ARE retained (see the
	// package buffer-ownership rule).
	SendBatch(topic string, recs []Record) error
	// SendTo appends directly to a specific partition.
	SendTo(topic string, partition int, key, value []byte) (int64, error)
	// SendToWatermarked is SendTo with a piggybacked watermark — the
	// topic-global broadcast form (end-of-stream above all), which must
	// reach every partition's consumer, not just the one a key hashes to.
	SendToWatermarked(topic string, partition int, key, value []byte, wm Watermark) (int64, error)
}

// Consumer reads records from one topic, either as a member of a consumer
// group (partitions dealt across members, offsets committed group-wide,
// commits fenced by the membership generation) or standalone (all
// partitions, private positions).
type Consumer interface {
	// Poll returns up to max records, blocking until at least one is
	// available, ctx is cancelled, or the topic closes.
	Poll(ctx context.Context, max int) ([]Record, error)
	// PollInto is Poll with a caller-owned scratch slice: records are
	// appended onto dst and the extended slice returned, so a steady-state
	// poll loop allocates nothing per poll.
	PollInto(ctx context.Context, dst []Record, max int) ([]Record, error)
	// TryPoll is a non-blocking Poll; (nil, nil) when nothing is ready.
	TryPoll(max int) ([]Record, error)
	// TryPollInto is a non-blocking PollInto; dst unextended when nothing
	// is ready.
	TryPollInto(dst []Record, max int) ([]Record, error)
	// WaitChan returns a channel closed when new records may be available
	// (or already closed if the topic is shut down). Arm it BEFORE a
	// TryPoll, block on it only if the poll came back empty. Backends may
	// deliver spurious wakeups (a woken caller re-polls and finds nothing);
	// remote backends may also delay a wakeup by a network round trip —
	// callers bound the wait with their own timer, as the streams pump does.
	WaitChan() <-chan struct{}
	// TopicClosed reports whether the topic has been shut down: retained
	// records can still be fetched, but no new records will arrive.
	TopicClosed() bool
	// Assignment returns the partitions this consumer currently owns.
	Assignment() []int
	// Committed returns the consumer's read position for partition p.
	Committed(p int) int64
	// Seek moves a standalone consumer's position for partition p; group
	// consumers, whose offsets are group-owned, get mq.ErrNotSubscribed.
	Seek(p int, offset int64) error
	// Lag returns the total records between this consumer's positions and
	// the high watermarks of its owned partitions.
	Lag() int64
	// Generation returns the group's fencing epoch (0 standalone): it
	// advances on every membership change, so two reads bracketing an
	// operation detect an interleaved rebalance.
	Generation() int64
	// RebalanceChan returns a channel closed at the group's next membership
	// change (standalone: a channel that never closes). Re-arm by calling
	// again.
	RebalanceChan() <-chan struct{}
	// Close releases the consumer; group members leave the group,
	// triggering a rebalance for the remaining members.
	Close()
}

// Bus is one message-bus backend: the only substrate handle the live
// dataflow layers (streams.Runtime, the core sessions, the ingest valves)
// hold. All methods are safe for concurrent use.
type Bus interface {
	// CreateTopic creates a topic with the given partition count; retain
	// bounds each partition to at most that many fully-consumed records
	// (0 = unlimited). Creation is idempotent across clients: creating a
	// topic that already exists with the SAME partition count succeeds
	// (multi-process deployments race their nodes' startups and first
	// wins), while a partition-count mismatch is an error — silently
	// proceeding would split sub-streams across incompatible hash spaces.
	CreateTopic(name string, partitions, retain int) error
	// TopicPartitions returns the partition count of an existing topic.
	TopicPartitions(name string) (int, error)
	// NewProducer returns a producer bound to this bus.
	NewProducer() Producer
	// NewConsumer returns a standalone consumer over every partition of
	// topic, starting at the current low watermarks.
	NewConsumer(topic string) (Consumer, error)
	// NewGroupConsumer returns a consumer that joins the named group on
	// topic; partitions are rebalanced across the group's live members.
	NewGroupConsumer(topic, group string) (Consumer, error)
	// GroupLag returns the total records between a group's committed
	// offsets and the topic's high watermarks — the ingest-backpressure
	// probe, which must stay truthful on every backend (a remote bus that
	// under-reported lag would quietly disable backpressure).
	GroupLag(topic, group string) (int64, error)
	// GroupCommitted returns a group's committed offset per partition
	// (index = partition). The snapshot is not atomic across partitions.
	GroupCommitted(topic, group string) ([]int64, error)
	// FetchInto reads up to max records from a partition starting at
	// offset from, appending onto dst — the offset-addressed replay read
	// crash recovery uses (never blocks; mq.ErrOutOfRange below the low
	// watermark).
	FetchInto(dst []Record, topic string, partition int, from int64, max int) ([]Record, error)
	// Close releases the bus handle. The in-memory backend closes its
	// broker (waking every blocked poll with mq.ErrClosed); a network
	// client closes its connections but leaves the remote daemon — and the
	// topics it owns — running.
	Close() error
}

// Counters is a snapshot of one bus handle's transport-level counters.
// Network backends account their wire traffic here; the in-memory backend,
// which moves records by reference, reports zeros.
type Counters struct {
	// BytesOut / BytesIn count wire bytes written and read by this handle,
	// frame headers included.
	BytesOut, BytesIn int64
	// Reconnects counts connections re-established after a loss.
	Reconnects int64
	// SendErrors / PollErrors count producer sends and consumer polls that
	// failed after any reconnect retry.
	SendErrors, PollErrors int64
}

// CounterSource is implemented by backends that account transport
// counters; callers type-assert (the ops exposition does) rather than
// every backend carrying dead zeros.
type CounterSource interface {
	Counters() Counters
}
