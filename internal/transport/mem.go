package transport

import (
	"errors"
	"fmt"

	"github.com/approxiot/approxiot/internal/mq"
)

// Mem is the in-memory bus backend: a zero-adapter wrapper over the mq
// broker. Producers and consumers it hands out ARE the mq types, so the
// semantics every other backend is conformance-tested against are the mq
// package's own — this backend cannot drift from the specification because
// it is the specification.
type Mem struct {
	b     *mq.Broker
	owned bool
}

var _ Bus = (*Mem)(nil)

// NewMem returns a bus backed by a fresh in-memory broker owned by the
// handle: Close shuts the broker down.
func NewMem() *Mem {
	return &Mem{b: mq.NewBroker(), owned: true}
}

// WrapBroker returns a bus view over an existing broker. The handle does
// not own the broker — Close is a no-op and shutdown stays with whoever
// created it. This is the bridge for callers (tests, the TCP daemon) that
// drive the broker directly and hand the bus view to the dataflow layers.
func WrapBroker(b *mq.Broker) *Mem {
	return &Mem{b: b}
}

// Broker exposes the underlying mq broker for callers that need the full
// concrete surface (topic introspection, DeleteTopic, direct appends in
// tests). Backend-portable code must not use it.
func (m *Mem) Broker() *mq.Broker { return m.b }

// CreateTopic implements Bus. Re-creating an existing topic with the same
// partition count succeeds without touching the topic (its retention is
// whatever the first creation set); a partition-count mismatch is an error.
func (m *Mem) CreateTopic(name string, partitions, retain int) error {
	var opts []mq.TopicOption
	if retain > 0 {
		opts = append(opts, mq.WithRetention(retain))
	}
	_, err := m.b.CreateTopic(name, partitions, opts...)
	if errors.Is(err, mq.ErrTopicExists) {
		t, terr := m.b.Topic(name)
		if terr == nil && t.Partitions() == partitions {
			return nil
		}
		if terr == nil {
			return fmt.Errorf("transport: topic %q exists with %d partitions, want %d", name, t.Partitions(), partitions)
		}
	}
	return err
}

// TopicPartitions implements Bus.
func (m *Mem) TopicPartitions(name string) (int, error) {
	t, err := m.b.Topic(name)
	if err != nil {
		return 0, err
	}
	return t.Partitions(), nil
}

// NewProducer implements Bus.
func (m *Mem) NewProducer() Producer {
	return mq.NewProducer(m.b)
}

// NewConsumer implements Bus.
func (m *Mem) NewConsumer(topic string) (Consumer, error) {
	return mq.NewConsumer(m.b, topic)
}

// NewGroupConsumer implements Bus.
func (m *Mem) NewGroupConsumer(topic, group string) (Consumer, error) {
	return mq.NewGroupConsumer(m.b, topic, group)
}

// GroupLag implements Bus.
func (m *Mem) GroupLag(topic, group string) (int64, error) {
	t, err := m.b.Topic(topic)
	if err != nil {
		return 0, err
	}
	return t.GroupLag(group)
}

// GroupCommitted implements Bus.
func (m *Mem) GroupCommitted(topic, group string) ([]int64, error) {
	t, err := m.b.Topic(topic)
	if err != nil {
		return nil, err
	}
	return t.GroupCommitted(group)
}

// FetchInto implements Bus. The partition is bounds-checked here because
// this path now serves remote callers through the TCP daemon: a malformed
// request must come back as an error, not a panic in the broker.
func (m *Mem) FetchInto(dst []Record, topic string, partition int, from int64, max int) ([]Record, error) {
	t, err := m.b.Topic(topic)
	if err != nil {
		return dst, err
	}
	if partition < 0 || partition >= t.Partitions() {
		return dst, fmt.Errorf("%w: partition %d of %d", mq.ErrOutOfRange, partition, t.Partitions())
	}
	return t.FetchInto(dst, partition, from, max)
}

// Close implements Bus: an owned broker (NewMem) is shut down, waking every
// blocked poll with mq.ErrClosed; a wrapped broker (WrapBroker) is left to
// its owner.
func (m *Mem) Close() error {
	if m.owned {
		m.b.Close()
	}
	return nil
}
