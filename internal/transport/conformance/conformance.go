// Package conformance is the executable contract of the transport boundary:
// a backend-agnostic test suite that holds every transport.Bus
// implementation to the in-memory broker's observable semantics — per-key
// ordering, group rebalance with generation-fenced exactly-once commits,
// bit-for-bit watermark propagation, end-of-stream broadcast, truthful lag
// probes, seek/replay, blocking-poll wakeups, and shutdown behavior. The
// in-memory Mem backend runs it as a self-check; the TCP backend runs it to
// prove the wire adds latency but not semantics.
//
// Timing discipline: remote backends may delay wakeups and rebalance
// notifications by a round trip, so the suite asserts *eventual* delivery
// within generous deadlines and never asserts immediacy.
package conformance

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/mq"
	"github.com/approxiot/approxiot/internal/transport"
)

// Backend is one bus-under-test instance plus the lever the shutdown tests
// need: a way to close the *backing* broker while the handle stays up (for
// a network backend, the daemon's bus dies but the client survives to
// observe it).
type Backend struct {
	Bus transport.Bus
	// ShutdownBackend closes the backing broker. Nil skips shutdown tests.
	ShutdownBackend func()
}

// Factory builds a fresh backend for one subtest; register cleanup on t.
type Factory func(t *testing.T) Backend

const suiteDeadline = 10 * time.Second

// Run executes the full suite against the factory's backend.
func Run(t *testing.T, mk Factory) {
	t.Run("TopicLifecycle", func(t *testing.T) { testTopicLifecycle(t, mk(t)) })
	t.Run("PerKeyOrdering", func(t *testing.T) { testPerKeyOrdering(t, mk(t)) })
	t.Run("RebalanceFencedCommits", func(t *testing.T) { testRebalance(t, mk(t)) })
	t.Run("WatermarkRoundTrip", func(t *testing.T) { testWatermarks(t, mk(t)) })
	t.Run("EOSBroadcast", func(t *testing.T) { testEOSBroadcast(t, mk(t)) })
	t.Run("LagProbes", func(t *testing.T) { testLagProbes(t, mk(t)) })
	t.Run("SeekReplay", func(t *testing.T) { testSeekReplay(t, mk(t)) })
	t.Run("BlockingWakeup", func(t *testing.T) { testBlockingWakeup(t, mk(t)) })
	t.Run("FetchAt", func(t *testing.T) { testFetchAt(t, mk(t)) })
	t.Run("BackendShutdown", func(t *testing.T) {
		be := mk(t)
		if be.ShutdownBackend == nil {
			t.Skip("backend has no shutdown lever")
		}
		testShutdown(t, be)
	})
}

func mustCreate(t *testing.T, bus transport.Bus, topic string, parts int) {
	t.Helper()
	if err := bus.CreateTopic(topic, parts, 0); err != nil {
		t.Fatalf("CreateTopic(%q): %v", topic, err)
	}
}

// drainN polls a consumer until n records are collected or the deadline
// passes.
func drainN(t *testing.T, c transport.Consumer, n int) []transport.Record {
	t.Helper()
	var out []transport.Record
	deadline := time.Now().Add(suiteDeadline)
	for len(out) < n && time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		recs, err := c.Poll(ctx, n-len(out))
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Poll: %v", err)
		}
		out = append(out, recs...)
	}
	if len(out) != n {
		t.Fatalf("drained %d records, want %d", len(out), n)
	}
	return out
}

func testTopicLifecycle(t *testing.T, be Backend) {
	bus := be.Bus
	mustCreate(t, bus, "t", 4)
	// Idempotent re-create with the same partition count: multi-process
	// startups race this.
	if err := bus.CreateTopic("t", 4, 0); err != nil {
		t.Fatalf("idempotent CreateTopic: %v", err)
	}
	// A partition-count mismatch must refuse — it would split the key hash
	// space between processes.
	if err := bus.CreateTopic("t", 8, 0); err == nil {
		t.Fatal("CreateTopic with mismatched partitions succeeded")
	}
	n, err := bus.TopicPartitions("t")
	if err != nil || n != 4 {
		t.Fatalf("TopicPartitions = %d, %v; want 4, nil", n, err)
	}
	if _, err := bus.TopicPartitions("nope"); !errors.Is(err, mq.ErrUnknownTopic) {
		t.Fatalf("TopicPartitions(unknown) = %v, want ErrUnknownTopic", err)
	}
	if _, err := bus.NewConsumer("nope"); !errors.Is(err, mq.ErrUnknownTopic) {
		t.Fatalf("NewConsumer(unknown) = %v, want ErrUnknownTopic", err)
	}
}

func testPerKeyOrdering(t *testing.T, be Backend) {
	bus := be.Bus
	mustCreate(t, bus, "t", 4)
	c, err := bus.NewGroupConsumer("t", "g")
	if err != nil {
		t.Fatalf("NewGroupConsumer: %v", err)
	}
	defer c.Close()

	const keys, perKey = 8, 40
	p := bus.NewProducer()
	// Interleave single sends and batches: both paths must preserve per-key
	// order because they share the key-hash partitioner.
	var batch []transport.Record
	for seq := 0; seq < perKey; seq++ {
		for k := 0; k < keys; k++ {
			key := []byte(fmt.Sprintf("key-%d", k))
			val := []byte(fmt.Sprintf("%d:%d", k, seq))
			if seq%2 == 0 {
				if _, _, err := p.Send("t", key, val); err != nil {
					t.Fatalf("Send: %v", err)
				}
			} else {
				batch = append(batch, transport.Record{Key: key, Value: val})
			}
		}
		if len(batch) > 0 {
			if err := p.SendBatch("t", batch); err != nil {
				t.Fatalf("SendBatch: %v", err)
			}
			batch = batch[:0]
		}
	}

	recs := drainN(t, c, keys*perKey)
	lastSeq := map[string]int{}
	part := map[string]int{}
	for _, r := range recs {
		var k, seq int
		if _, err := fmt.Sscanf(string(r.Value), "%d:%d", &k, &seq); err != nil {
			t.Fatalf("bad value %q", r.Value)
		}
		key := string(r.Key)
		if last, ok := lastSeq[key]; ok && seq <= last {
			t.Fatalf("key %s: seq %d arrived after %d — per-key order broken", key, seq, last)
		}
		lastSeq[key] = seq
		if prev, ok := part[key]; ok && prev != r.Partition {
			t.Fatalf("key %s spread across partitions %d and %d", key, prev, r.Partition)
		}
		part[key] = r.Partition
	}
	for k, last := range lastSeq {
		if last != perKey-1 {
			t.Fatalf("key %s: last seq %d, want %d", k, last, perKey-1)
		}
	}
}

func testRebalance(t *testing.T, be Backend) {
	bus := be.Bus
	mustCreate(t, bus, "t", 4)
	p := bus.NewProducer()

	produce := func(n int, tag string) {
		for i := 0; i < n; i++ {
			key := []byte(fmt.Sprintf("k%d", i%16))
			if _, _, err := p.Send("t", key, []byte(fmt.Sprintf("%s-%d", tag, i))); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
	}

	type slot struct {
		part int
		off  int64
	}
	// collect polls c for budget and returns what it saw; callers merge, so
	// concurrent collectors never share state.
	collect := func(c transport.Consumer, budget time.Duration) map[slot]int {
		got := map[slot]int{}
		deadline := time.Now().Add(budget)
		for time.Now().Before(deadline) {
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			recs, err := c.Poll(ctx, 64)
			cancel()
			if err != nil {
				continue
			}
			for _, r := range recs {
				got[slot{r.Partition, r.Offset}]++
			}
		}
		return got
	}
	seen := map[slot]int{}
	total := 0
	merge := func(got map[slot]int) {
		for s, n := range got {
			seen[s] += n
			total += n
		}
	}

	a, err := bus.NewGroupConsumer("t", "g")
	if err != nil {
		t.Fatalf("consumer a: %v", err)
	}
	defer a.Close()
	genA := a.Generation()

	produce(400, "phase1")
	merge(collect(a, 300*time.Millisecond))

	// Second member joins: the generation must advance and a's rebalance
	// channel must fire (eventually — remote notification rides a long
	// poll).
	reb := a.RebalanceChan()
	b, err := bus.NewGroupConsumer("t", "g")
	if err != nil {
		t.Fatalf("consumer b: %v", err)
	}
	select {
	case <-reb:
	case <-time.After(suiteDeadline):
		t.Fatal("rebalance channel did not fire on member join")
	}
	waitFor(t, "generation advance after join", func() bool { return a.Generation() > genA })

	produce(400, "phase2")
	// a and b poll concurrently: the fenced claims must never double-deliver
	// a (partition, offset).
	fromB := make(chan map[slot]int, 1)
	go func() { fromB <- collect(b, 400*time.Millisecond) }()
	gotA := collect(a, 400*time.Millisecond)
	merge(<-fromB)
	merge(gotA)

	// Member b leaves; a picks everything back up.
	b.Close()
	produce(200, "phase3")
	waitFor(t, "full drain after leave", func() bool {
		merge(collect(a, 200*time.Millisecond))
		return total >= 1000
	})

	for s, n := range seen {
		if n > 1 {
			t.Fatalf("partition %d offset %d delivered %d times — fencing failed", s.part, s.off, n)
		}
	}
	if total != 1000 {
		t.Fatalf("delivered %d records total, want exactly 1000", total)
	}
	// All 1000 committed: group lag returns to zero.
	waitFor(t, "group lag zero", func() bool {
		lag, err := bus.GroupLag("t", "g")
		return err == nil && lag == 0
	})
}

func testWatermarks(t *testing.T, be Backend) {
	bus := be.Bus
	mustCreate(t, bus, "t", 3)
	c, err := bus.NewConsumer("t")
	if err != nil {
		t.Fatalf("NewConsumer: %v", err)
	}
	defer c.Close()

	p := bus.NewProducer()
	at := time.Unix(0, 1723000000000000000)
	// Keyed watermarked send, a keepalive (zero At, non-empty From), and a
	// batch with per-record watermarks: all must cross bit-for-bit.
	if _, _, err := p.SendWatermarked("t", []byte("k"), []byte("v"), mq.Watermark{From: "leaf-1", At: at}); err != nil {
		t.Fatalf("SendWatermarked: %v", err)
	}
	if _, err := p.SendToWatermarked("t", 2, nil, []byte("ka"), mq.Watermark{From: "leaf-2"}); err != nil {
		t.Fatalf("SendToWatermarked: %v", err)
	}
	batch := []transport.Record{
		{Key: []byte("k"), Value: []byte("b0"), Watermark: mq.Watermark{From: "leaf-3", At: at.Add(time.Second)}},
		{Key: []byte("k"), Value: []byte("b1")},
	}
	if err := p.SendBatch("t", batch); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}

	recs := drainN(t, c, 4)
	byVal := map[string]mq.Watermark{}
	for _, r := range recs {
		byVal[string(r.Value)] = r.Watermark
	}
	if wm := byVal["v"]; wm.From != "leaf-1" || !wm.At.Equal(at) {
		t.Fatalf("watermark on v = %+v, want leaf-1@%v", wm, at)
	}
	if wm := byVal["ka"]; wm.From != "leaf-2" || !wm.At.IsZero() {
		t.Fatalf("keepalive watermark = %+v, want leaf-2 with zero At", wm)
	}
	if wm := byVal["b0"]; wm.From != "leaf-3" || !wm.At.Equal(at.Add(time.Second)) {
		t.Fatalf("batch watermark = %+v", wm)
	}
	if wm := byVal["b1"]; wm.From != "" || !wm.At.IsZero() {
		t.Fatalf("unwatermarked batch record carried %+v", wm)
	}
}

func testEOSBroadcast(t *testing.T, be Backend) {
	bus := be.Bus
	mustCreate(t, bus, "t", 3)
	// Two group members split the partitions; the broadcast must reach
	// every partition so both members observe end-of-stream.
	a, err := bus.NewGroupConsumer("t", "g")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := bus.NewGroupConsumer("t", "g")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// The tree's EOS convention: a far-future watermark broadcast to every
	// partition (year-2200 nanos still fit int64 — it must survive the wire).
	eosAt := time.Date(2200, 1, 1, 0, 0, 0, 0, time.UTC)
	p := bus.NewProducer()
	parts, _ := bus.TopicPartitions("t")
	for pi := 0; pi < parts; pi++ {
		if _, err := p.SendToWatermarked("t", pi, nil, []byte("eos"), mq.Watermark{From: "root", At: eosAt}); err != nil {
			t.Fatalf("broadcast to partition %d: %v", pi, err)
		}
	}

	got := map[int]mq.Watermark{}
	deadline := time.Now().Add(suiteDeadline)
	for len(got) < parts && time.Now().Before(deadline) {
		for _, c := range []transport.Consumer{a, b} {
			recs, err := c.TryPoll(16)
			if err != nil {
				t.Fatalf("TryPoll: %v", err)
			}
			for _, r := range recs {
				got[r.Partition] = r.Watermark
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(got) != parts {
		t.Fatalf("EOS reached %d partitions, want %d", len(got), parts)
	}
	for pi, wm := range got {
		if !wm.At.Equal(eosAt) {
			t.Fatalf("partition %d: EOS At = %v, want %v", pi, wm.At, eosAt)
		}
	}
}

func testLagProbes(t *testing.T, be Backend) {
	bus := be.Bus
	mustCreate(t, bus, "t", 2)
	// The probe order matters: the group must exist (a member joined)
	// before GroupLag is asked, matching how the session creates the leaf
	// valve's group before probing it.
	c, err := bus.NewGroupConsumer("t", "g")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := bus.NewConsumer("t")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := bus.NewProducer()
	const n = 100
	for i := 0; i < n; i++ {
		if _, _, err := p.Send("t", []byte{byte(i % 7)}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	lag, err := bus.GroupLag("t", "g")
	if err != nil || lag != n {
		t.Fatalf("GroupLag before consume = %d, %v; want %d — an under-reporting "+
			"backend silently disables ingest backpressure", lag, err, n)
	}
	if got := s.Lag(); got != n {
		t.Fatalf("standalone Lag = %d, want %d", got, n)
	}
	if _, err := bus.GroupLag("t", "no-such-group"); err == nil {
		t.Fatal("GroupLag(unknown group) succeeded")
	}
	if _, err := bus.GroupLag("no-such-topic", "g"); !errors.Is(err, mq.ErrUnknownTopic) {
		t.Fatalf("GroupLag(unknown topic) = %v, want ErrUnknownTopic", err)
	}

	drainN(t, c, n)
	waitFor(t, "group lag drains to zero", func() bool {
		lag, err := bus.GroupLag("t", "g")
		return err == nil && lag == 0
	})
	offs, err := bus.GroupCommitted("t", "g")
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, off := range offs {
		sum += off
	}
	if sum != n {
		t.Fatalf("committed offsets sum to %d, want %d", sum, n)
	}

	drainN(t, s, n)
	if got := s.Lag(); got != 0 {
		t.Fatalf("standalone Lag after drain = %d, want 0", got)
	}
}

func testSeekReplay(t *testing.T, be Backend) {
	bus := be.Bus
	mustCreate(t, bus, "t", 2)
	p := bus.NewProducer()
	const n = 20
	for i := 0; i < n; i++ {
		if _, _, err := p.Send("t", []byte{byte(i % 5)}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := bus.NewConsumer("t")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first := drainN(t, s, n)
	for _, part := range s.Assignment() {
		if err := s.Seek(part, 0); err != nil {
			t.Fatalf("Seek(%d, 0): %v", part, err)
		}
		if got := s.Committed(part); got != 0 {
			t.Fatalf("Committed(%d) after seek = %d, want 0", part, got)
		}
	}
	second := drainN(t, s, n)
	if len(first) != len(second) {
		t.Fatalf("replay returned %d records, want %d", len(second), len(first))
	}

	g, err := bus.NewGroupConsumer("t", "g")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.Seek(0, 0); !errors.Is(err, mq.ErrNotSubscribed) {
		t.Fatalf("group Seek = %v, want ErrNotSubscribed", err)
	}
}

func testBlockingWakeup(t *testing.T, be Backend) {
	bus := be.Bus
	mustCreate(t, bus, "t", 1)
	c, err := bus.NewGroupConsumer("t", "g")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := bus.NewProducer()

	// A blocked Poll must be woken by a concurrent produce.
	errCh := make(chan error, 1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		_, _, err := p.Send("t", nil, []byte("wake"))
		errCh <- err
	}()
	ctx, cancel := context.WithTimeout(context.Background(), suiteDeadline)
	recs, err := c.Poll(ctx, 4)
	cancel()
	if err != nil || len(recs) != 1 {
		t.Fatalf("blocked Poll woke with %d recs, %v", len(recs), err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	// The pump's arm/try/wait sequence: arm WaitChan, find nothing, block,
	// then a produce must close the channel (within a round trip for remote
	// backends).
	ch := c.WaitChan()
	if recs, err := c.TryPoll(4); err != nil || len(recs) != 0 {
		t.Fatalf("TryPoll on idle topic = %d recs, %v", len(recs), err)
	}
	if _, _, err := p.Send("t", nil, []byte("wake2")); err != nil {
		t.Fatal(err)
	}
	fired := false
	deadline := time.Now().Add(suiteDeadline)
	for !fired && time.Now().Before(deadline) {
		select {
		case <-ch:
			fired = true
		case <-time.After(100 * time.Millisecond):
			// Spurious-wakeup-tolerant re-arm, as real pumps do.
			if recs, _ := c.TryPoll(4); len(recs) > 0 {
				return // record arrived; wakeup machinery did its job
			}
			ch = c.WaitChan()
		}
	}
	if !fired {
		t.Fatal("WaitChan never fired after produce")
	}
	drainN(t, c, 1)
}

func testFetchAt(t *testing.T, be Backend) {
	bus := be.Bus
	mustCreate(t, bus, "t", 2)
	p := bus.NewProducer()
	for i := 0; i < 10; i++ {
		if _, err := p.SendTo("t", i%2, []byte{byte(i)}, []byte{byte(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	// Offset-addressed replay (the crash-recovery read): absolute offsets,
	// no consumer state.
	recs, err := bus.FetchInto(nil, "t", 0, 2, 16)
	if err != nil {
		t.Fatalf("FetchInto: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("FetchInto from offset 2 returned %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Offset != int64(2+i) || r.Partition != 0 {
			t.Fatalf("record %d at partition %d offset %d, want 0/%d", i, r.Partition, r.Offset, 2+i)
		}
	}
	if _, err := bus.FetchInto(nil, "t", 9, 0, 1); err == nil {
		t.Fatal("FetchInto on bogus partition succeeded")
	}
}

func testShutdown(t *testing.T, be Backend) {
	bus := be.Bus
	mustCreate(t, bus, "t", 1)
	c, err := bus.NewGroupConsumer("t", "g")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := bus.NewProducer()
	for i := 0; i < 3; i++ {
		if _, _, err := p.Send("t", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	be.ShutdownBackend()

	// Retained records drain even after shutdown; then polls report closed.
	recs := drainN(t, c, 3)
	if len(recs) != 3 {
		t.Fatalf("drained %d retained records after shutdown", len(recs))
	}
	waitFor(t, "poll reports closed", func() bool {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		_, err := c.Poll(ctx, 1)
		cancel()
		return errors.Is(err, mq.ErrClosed)
	})
	waitFor(t, "TopicClosed observed", c.TopicClosed)
}

// waitFor polls cond until true or the suite deadline, failing with name.
func waitFor(t *testing.T, name string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(suiteDeadline)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", name)
}
