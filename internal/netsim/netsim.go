// Package netsim models the WAN segments between edge-computing layers on
// simulated time, replacing the paper's tc-shaped testbed network (§V-A):
// per-link one-way propagation delay (their RTTs: 20/40/80 ms between
// adjacent layers), finite bandwidth (1 Gbps links) with FIFO serialization,
// and byte accounting for the Fig. 7 bandwidth-saving measurements.
//
// A Link is single-queue: message n+1 cannot start transmitting until
// message n has left the sender, so a saturated link builds queueing delay
// exactly like the paper's native execution does in Fig. 8.
package netsim

import (
	"time"

	"github.com/approxiot/approxiot/internal/vclock"
	"github.com/approxiot/approxiot/internal/xrand"
)

// Link is a simulated point-to-point WAN hop.
type Link struct {
	sim       *vclock.Sim
	delay     time.Duration // one-way propagation
	bandwidth float64       // bits per second; 0 = unlimited
	jitter    time.Duration // uniform ± on propagation
	loss      float64       // per-message drop probability
	fifo      bool          // ordered delivery: jitter varies delay, never order
	rng       *xrand.Rand   // drives jitter and loss

	busyUntil   time.Time
	lastArrival time.Time // high-water arrival instant for FIFO clamping
	bytesSent   int64
	msgsSent    int64
	msgsLost    int64
	busyTime    time.Duration
	firstSend   time.Time
	lastSend    time.Time
	started     bool
}

// LinkOption customizes a Link.
type LinkOption func(*Link)

// WithDelay sets the one-way propagation delay. The paper reports RTTs, so
// callers typically pass RTT/2.
func WithDelay(d time.Duration) LinkOption {
	return func(l *Link) {
		if d > 0 {
			l.delay = d
		}
	}
}

// WithRTT sets the propagation delay from a round-trip time.
func WithRTT(rtt time.Duration) LinkOption {
	return WithDelay(rtt / 2)
}

// WithBandwidth sets the link capacity in bits per second; 0 disables the
// serialization model (infinite capacity).
func WithBandwidth(bitsPerSecond float64) LinkOption {
	return func(l *Link) {
		if bitsPerSecond > 0 {
			l.bandwidth = bitsPerSecond
		}
	}
}

// WithJitter adds a seeded uniform ±j perturbation to the propagation delay
// of every message. Jittered messages may be delivered out of order, as on
// a real WAN.
func WithJitter(j time.Duration, seed uint64) LinkOption {
	return func(l *Link) {
		if j > 0 {
			l.jitter = j
			l.ensureRNG(seed)
		}
	}
}

// WithFIFO makes the link deliver messages in send order, like a TCP/Kafka
// transport: jitter still perturbs per-message latency, but a message's
// arrival is clamped to be no earlier than any message sent before it.
// Event-time pipelines require per-chain ordered delivery — a watermark
// overtaking the data it vouches for would orphan that data as late.
func WithFIFO() LinkOption {
	return func(l *Link) { l.fifo = true }
}

// WithLoss drops each message independently with probability p (seeded).
// Lost messages still consume wire time (they are transmitted, then lost),
// and are counted by MessagesLost.
func WithLoss(p float64, seed uint64) LinkOption {
	return func(l *Link) {
		if p > 0 {
			if p > 1 {
				p = 1
			}
			l.loss = p
			l.ensureRNG(seed)
		}
	}
}

func (l *Link) ensureRNG(seed uint64) {
	if l.rng == nil {
		l.rng = xrand.New(seed)
	}
}

// Gbps converts gigabits/second to bits/second for WithBandwidth.
func Gbps(g float64) float64 { return g * 1e9 }

// Mbps converts megabits/second to bits/second for WithBandwidth.
func Mbps(m float64) float64 { return m * 1e6 }

// NewLink returns a link driven by the given simulator. Defaults: zero
// delay, unlimited bandwidth.
func NewLink(sim *vclock.Sim, opts ...LinkOption) *Link {
	l := &Link{sim: sim}
	for _, opt := range opts {
		opt(l)
	}
	return l
}

// Send transmits size bytes and schedules deliver at the arrival instant:
// queueing behind in-flight messages, then size·8/bandwidth of
// serialization, then the propagation delay. It returns the arrival time.
//
// Send must be called from within the simulation loop (it reads the
// simulated clock).
func (l *Link) Send(size int, deliver func()) time.Time {
	now := l.sim.Now()
	start := now
	if l.busyUntil.After(start) {
		start = l.busyUntil // FIFO: wait for the wire to free up
	}
	var tx time.Duration
	if l.bandwidth > 0 {
		tx = time.Duration(float64(size) * 8 / l.bandwidth * float64(time.Second))
	}
	l.busyUntil = start.Add(tx)
	delay := l.delay
	if l.jitter > 0 {
		delay += time.Duration((l.rng.Float64()*2 - 1) * float64(l.jitter))
		if delay < 0 {
			delay = 0
		}
	}
	arrival := l.busyUntil.Add(delay)
	if l.fifo {
		if arrival.Before(l.lastArrival) {
			arrival = l.lastArrival
		}
		l.lastArrival = arrival
	}

	l.bytesSent += int64(size)
	l.msgsSent++
	l.busyTime += tx
	if !l.started {
		l.firstSend = now
		l.started = true
	}
	l.lastSend = now

	if l.loss > 0 && l.rng.Bernoulli(l.loss) {
		l.msgsLost++
		return arrival // transmitted, then lost: no delivery event
	}
	if deliver != nil {
		l.sim.At(arrival, deliver)
	}
	return arrival
}

// MessagesLost returns the number of messages dropped by the loss model.
func (l *Link) MessagesLost() int64 { return l.msgsLost }

// BytesSent returns the total payload bytes offered to the link.
func (l *Link) BytesSent() int64 { return l.bytesSent }

// MessagesSent returns the number of Send calls.
func (l *Link) MessagesSent() int64 { return l.msgsSent }

// Backlog returns how long a message sent now would wait before starting to
// transmit — the current queueing delay.
func (l *Link) Backlog() time.Duration {
	now := l.sim.Now()
	if l.busyUntil.After(now) {
		return l.busyUntil.Sub(now)
	}
	return 0
}

// Utilization returns the fraction of time the wire was busy from the first
// Send to the end of the last transmission. It reports 0 while nothing has
// been transmitted.
func (l *Link) Utilization() float64 {
	if !l.started {
		return 0
	}
	span := l.busyUntil.Sub(l.firstSend)
	if span <= 0 {
		return 0
	}
	u := float64(l.busyTime) / float64(span)
	if u > 1 {
		u = 1
	}
	return u
}

// ResetCounters clears the accounting (not the in-flight state); used
// between benchmark phases.
func (l *Link) ResetCounters() {
	l.bytesSent = 0
	l.msgsSent = 0
	l.busyTime = 0
	l.started = false
}
