package netsim

import (
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/vclock"
)

var epoch = time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)

func TestPropagationDelayOnly(t *testing.T) {
	sim := vclock.NewSim(epoch)
	l := NewLink(sim, WithDelay(10*time.Millisecond))
	var arrived time.Time
	l.Send(1000, func() { arrived = sim.Now() })
	sim.Run()
	if want := epoch.Add(10 * time.Millisecond); !arrived.Equal(want) {
		t.Fatalf("arrival = %v, want %v", arrived, want)
	}
}

func TestRTTHalved(t *testing.T) {
	sim := vclock.NewSim(epoch)
	l := NewLink(sim, WithRTT(20*time.Millisecond))
	at := l.Send(0, nil)
	if want := epoch.Add(10 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("arrival = %v, want one-way 10ms (%v)", at, want)
	}
}

func TestSerializationDelay(t *testing.T) {
	sim := vclock.NewSim(epoch)
	// 1 Mbps link: 1250 bytes = 10000 bits = 10 ms on the wire.
	l := NewLink(sim, WithBandwidth(Mbps(1)))
	at := l.Send(1250, nil)
	if want := epoch.Add(10 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("arrival = %v, want %v", at, want)
	}
}

func TestFIFOQueueingBuildsBacklog(t *testing.T) {
	sim := vclock.NewSim(epoch)
	l := NewLink(sim, WithBandwidth(Mbps(1))) // 10ms per 1250B message
	var arrivals []time.Time
	for i := 0; i < 3; i++ {
		l.Send(1250, func() { arrivals = append(arrivals, sim.Now()) })
	}
	if got := l.Backlog(); got != 30*time.Millisecond {
		t.Fatalf("Backlog = %v, want 30ms", got)
	}
	sim.Run()
	for i, want := range []time.Duration{10, 20, 30} {
		if !arrivals[i].Equal(epoch.Add(want * time.Millisecond)) {
			t.Fatalf("arrival %d = %v, want +%dms", i, arrivals[i], want)
		}
	}
}

func TestCombinedDelayAndBandwidth(t *testing.T) {
	sim := vclock.NewSim(epoch)
	l := NewLink(sim, WithDelay(40*time.Millisecond), WithBandwidth(Mbps(1)))
	at := l.Send(1250, nil)
	// 10 ms serialization + 40 ms propagation.
	if want := epoch.Add(50 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("arrival = %v, want %v", at, want)
	}
}

func TestUnlimitedBandwidthNoSerialization(t *testing.T) {
	sim := vclock.NewSim(epoch)
	l := NewLink(sim, WithDelay(time.Millisecond))
	a := l.Send(1<<30, nil)
	b := l.Send(1<<30, nil)
	if !a.Equal(b) {
		t.Fatalf("unlimited link serialized: %v vs %v", a, b)
	}
}

func TestByteAccounting(t *testing.T) {
	sim := vclock.NewSim(epoch)
	l := NewLink(sim)
	l.Send(100, nil)
	l.Send(250, nil)
	if l.BytesSent() != 350 {
		t.Fatalf("BytesSent = %d, want 350", l.BytesSent())
	}
	if l.MessagesSent() != 2 {
		t.Fatalf("MessagesSent = %d, want 2", l.MessagesSent())
	}
	l.ResetCounters()
	if l.BytesSent() != 0 || l.MessagesSent() != 0 {
		t.Fatal("ResetCounters left residue")
	}
}

func TestBacklogDrainsOverTime(t *testing.T) {
	sim := vclock.NewSim(epoch)
	l := NewLink(sim, WithBandwidth(Mbps(1)))
	l.Send(1250, nil) // 10ms of wire time
	sim.RunFor(4 * time.Millisecond)
	if got := l.Backlog(); got != 6*time.Millisecond {
		t.Fatalf("Backlog after 4ms = %v, want 6ms", got)
	}
	sim.RunFor(10 * time.Millisecond)
	if got := l.Backlog(); got != 0 {
		t.Fatalf("Backlog after drain = %v, want 0", got)
	}
}

func TestUtilizationSaturatedLink(t *testing.T) {
	sim := vclock.NewSim(epoch)
	l := NewLink(sim, WithBandwidth(Mbps(1)))
	// Offer 10 back-to-back messages at t=0: the wire is busy 100% of the
	// span from first send to the end of the last transmission.
	for i := 0; i < 10; i++ {
		l.Send(1250, nil)
	}
	sim.Run()
	if u := l.Utilization(); u < 0.99 {
		t.Fatalf("Utilization = %g, want ~1.0", u)
	}
}

func TestUtilizationIdleLink(t *testing.T) {
	sim := vclock.NewSim(epoch)
	l := NewLink(sim, WithBandwidth(Gbps(1)))
	// Two tiny sends 1 second apart: utilization should be ~0.
	l.Send(125, nil)
	sim.RunFor(time.Second)
	l.Send(125, nil)
	sim.Run()
	if u := l.Utilization(); u > 0.01 {
		t.Fatalf("Utilization = %g, want ~0", u)
	}
}

func TestGbpsMbpsHelpers(t *testing.T) {
	if Gbps(1) != 1e9 || Mbps(100) != 1e8 {
		t.Fatal("unit helpers wrong")
	}
}

func BenchmarkSend(b *testing.B) {
	sim := vclock.NewSim(epoch)
	l := NewLink(sim, WithDelay(10*time.Millisecond), WithBandwidth(Gbps(1)))
	for i := 0; i < b.N; i++ {
		l.Send(512, nil)
	}
}
