package netsim

import (
	"testing"
	"time"

	"github.com/approxiot/approxiot/internal/vclock"
)

func TestJitterPerturbsWithinBounds(t *testing.T) {
	sim := vclock.NewSim(epoch)
	l := NewLink(sim, WithDelay(50*time.Millisecond), WithJitter(10*time.Millisecond, 1))
	sawDifferent := false
	var prev time.Time
	for i := 0; i < 200; i++ {
		at := l.Send(0, nil)
		d := at.Sub(sim.Now())
		if d < 40*time.Millisecond || d > 60*time.Millisecond {
			t.Fatalf("jittered delay %v outside 50ms ± 10ms", d)
		}
		if i > 0 && !at.Equal(prev) {
			sawDifferent = true
		}
		prev = at
	}
	if !sawDifferent {
		t.Fatal("jitter produced identical delays for 200 messages")
	}
}

func TestJitterNeverNegative(t *testing.T) {
	sim := vclock.NewSim(epoch)
	l := NewLink(sim, WithDelay(time.Millisecond), WithJitter(10*time.Millisecond, 2))
	for i := 0; i < 500; i++ {
		at := l.Send(0, nil)
		if at.Before(sim.Now()) {
			t.Fatalf("message arrived before it was sent: %v", at)
		}
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	run := func() []time.Time {
		sim := vclock.NewSim(epoch)
		l := NewLink(sim, WithDelay(time.Millisecond), WithJitter(time.Millisecond, 42))
		var out []time.Time
		for i := 0; i < 50; i++ {
			out = append(out, l.Send(0, nil))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed produced different jitter")
		}
	}
}

func TestLossDropsRoughlyAtRate(t *testing.T) {
	sim := vclock.NewSim(epoch)
	l := NewLink(sim, WithLoss(0.2, 7))
	delivered := 0
	const n = 5000
	for i := 0; i < n; i++ {
		l.Send(10, func() { delivered++ })
	}
	sim.Run()
	lost := n - delivered
	if int64(lost) != l.MessagesLost() {
		t.Fatalf("lost %d but MessagesLost = %d", lost, l.MessagesLost())
	}
	rate := float64(lost) / n
	if rate < 0.17 || rate > 0.23 {
		t.Fatalf("loss rate = %.3f, want ~0.2", rate)
	}
}

func TestLossStillConsumesWireTime(t *testing.T) {
	sim := vclock.NewSim(epoch)
	l := NewLink(sim, WithBandwidth(Mbps(1)), WithLoss(1, 3)) // lose everything
	l.Send(1250, nil)                                         // 10ms of wire
	if got := l.Backlog(); got != 10*time.Millisecond {
		t.Fatalf("lost message freed the wire: backlog %v", got)
	}
	if l.BytesSent() != 1250 {
		t.Fatalf("lost message not counted as sent: %d bytes", l.BytesSent())
	}
}

func TestLossZeroAndClamped(t *testing.T) {
	sim := vclock.NewSim(epoch)
	ok := 0
	l := NewLink(sim, WithLoss(0, 1)) // 0 = option ignored
	l.Send(1, func() { ok++ })
	sim.Run()
	if ok != 1 {
		t.Fatal("zero loss dropped a message")
	}
	l2 := NewLink(sim, WithLoss(5, 1)) // clamp to 1
	got := 0
	l2.Send(1, func() { got++ })
	sim.Run()
	if got != 0 {
		t.Fatal("loss > 1 not clamped to certain drop")
	}
}
