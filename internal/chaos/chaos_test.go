package chaos

import (
	"flag"
	"fmt"
	"testing"
)

// -chaos.seed replays one schedule on its own:
//
//	go test ./internal/chaos/ -run TestChaosSeedFlag -chaos.seed=42 -v
var seedFlag = flag.Uint64("chaos.seed", 0, "run a single chaos schedule with this seed (0 = skip)")

func runSeed(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", cfg.Seed, err)
	}
	t.Logf("seed %d: produced=%d windows=%d ops=%d (kill=%d restart=%d add=%d remove=%d detach=%d attach=%d stall=%d burst=%d) maxRecovery=%v throughput=%.0f items/s",
		rep.Seed, rep.Produced, rep.Windows, len(rep.Ops),
		rep.Kills, rep.Restarts, rep.Adds, rep.Removes, rep.Detaches, rep.Attaches, rep.Stalls, rep.Bursts,
		rep.MaxRecovery, rep.Throughput)
	return rep
}

// TestChaosFixedSeeds is the CI gate: three fixed schedules, processing-time
// windows, every invariant checked by Run itself.
func TestChaosFixedSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rep := runSeed(t, Config{Seed: seed})
			if rep.Windows == 0 {
				t.Fatal("no windows closed")
			}
			if rep.Produced == 0 {
				t.Fatal("nothing produced")
			}
		})
	}
}

// TestChaosEventTimeSeed runs one fixed event-time schedule: timestamp
// disorder joins the impairment pool and the invariant must hold in
// estimated-input currency (late drops under crash races are legal, losing
// their represented input is not).
func TestChaosEventTimeSeed(t *testing.T) {
	rep := runSeed(t, Config{Seed: 7, EventTime: true})
	if rep.Windows == 0 {
		t.Fatal("no windows closed")
	}
}

// TestChaosTopKSeed runs one fixed event-time schedule with the full query
// breadth riding along: sliding windows over 3 panes, group-by top-3, and a
// median quantile. The verdict recomputes every sliding estimate from the
// emitted pane history (value and variance) and requires finite bounds on
// every ranked group and quantile interval — under crashes, rescales, and
// timestamp disorder.
func TestChaosTopKSeed(t *testing.T) {
	rep := runSeed(t, Config{Seed: 16, EventTime: true, Slide: 3, TopK: true})
	if rep.Windows == 0 {
		t.Fatal("no windows closed")
	}
}

// TestChaosSeedFlag replays a single operator-chosen schedule
// (-chaos.seed=N); it skips when the flag is unset.
func TestChaosSeedFlag(t *testing.T) {
	if *seedFlag == 0 {
		t.Skip("set -chaos.seed=N to replay a schedule")
	}
	runSeed(t, Config{Seed: *seedFlag})
	runSeed(t, Config{Seed: *seedFlag, EventTime: true})
}
