// Package chaos is the fault-injection harness for elastic live
// deployments: it drives a real Deployment through a seeded random schedule
// of member crashes, restarts, group rescales, leaf detach/attach cycles,
// and ingest impairments (stalled slots, bursts, event-time disorder) while
// pushing a known item count — then checks that the paper's exact-count
// identity Σ EstimatedInput + LateDroppedInput == Produced survived, that
// every confidence interval stayed finite, and that every crash recovered.
//
// Everything is deterministic in Config.Seed (the schedule, not goroutine
// interleaving), so a failing seed is a reproducible bug report. The test
// binary exposes -chaos.seed to replay one.
package chaos

import (
	"fmt"
	"math"
	"time"

	"github.com/approxiot/approxiot"
	"github.com/approxiot/approxiot/internal/stats"
	"github.com/approxiot/approxiot/internal/xrand"
)

// Config shapes one chaos run. The zero value is a usable small run; only
// Seed is usually worth setting.
type Config struct {
	// Seed fixes the op schedule. Runs with equal configs are identical
	// schedules (goroutine interleaving still varies).
	Seed uint64
	// Rounds is the number of push+op rounds (default 12; round 0 always
	// pushes undisturbed to warm the tree).
	Rounds int
	// PerSlot is the item count pushed per source slot per round
	// (default 20).
	PerSlot int
	// EventTime switches the deployment to event-time windowing and adds
	// timestamp disorder to the impairment pool.
	EventTime bool
	// Slide composes sliding windows over the last Slide tumbling panes
	// (< 2 disables). The verdict then recomputes every sliding estimate —
	// value and variance — from the emitted pane history and requires
	// agreement to float rounding.
	Slide int
	// TopK adds a group-by top-3 and a median-quantile query to the window
	// job; the verdict requires finite bounds on every ranked group and a
	// well-ordered quantile interval in every window.
	TopK bool
}

// Report is what a chaos run measured, alongside the verdict Run returns
// as its error.
type Report struct {
	// Seed reproduces the schedule.
	Seed uint64
	// Ops is the executed schedule, in order — the reproduction recipe a
	// failure prints.
	Ops []string
	// Produced / Estimated / LateDroppedInput are the two sides of the
	// invariant: Estimated+LateDroppedInput must equal Produced exactly
	// (up to float rounding).
	Produced         int64
	Estimated        float64
	LateDroppedInput float64
	// Windows counts the non-empty windows the root closed.
	Windows int
	// Kills .. Stalls tally the ops by kind.
	Kills, Restarts, Adds, Removes, Detaches, Attaches, Stalls, Bursts int
	// MaxRecovery is the longest single RestartMember call — checkpoint
	// load, gap replay, and rejoin included.
	MaxRecovery time.Duration
	// Throughput is items/s over the whole run (rescales and crashes
	// included), from the final LiveResult.
	Throughput float64
}

func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 12
	}
	if c.PerSlot <= 0 {
		c.PerSlot = 20
	}
	return c
}

// window is the deployment's processing-time close cadence; in event-time
// mode the tree's own window (1 s in the testbed) defines window extents
// and this only paces the watermark sweep.
const window = 25 * time.Millisecond

// eventSpan is the event-time each round advances; lateness is how much
// disorder the jitter impairment may inject (kept well under eventSpan so
// jittered records stay in-horizon — late drops under crash/rescale races
// are still possible and are exactly what LateDroppedInput accounts for).
const (
	eventSpan = 300 * time.Millisecond
	lateness  = eventSpan
)

// epoch anchors event timestamps; any fixed instant works.
var epoch = time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)

// Run executes one chaos schedule and returns the measured Report plus a
// non-nil error for any violated guarantee: a broken count invariant, a
// non-finite estimate or confidence bound, a failed elastic operation, or
// an unrecovered crash.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed)
	rep := &Report{Seed: cfg.Seed}

	dcfg := approxiot.Config{
		Fraction:    0.3,
		Queries:     []approxiot.QueryKind{approxiot.Sum, approxiot.Count},
		Seed:        cfg.Seed,
		Window:      window,
		Partitions:  4,
		LayerShards: 2,
		Checkpoint:  approxiot.NewMemoryCheckpointStore(),
	}
	if cfg.EventTime {
		dcfg.EventTime = true
		dcfg.AllowedLateness = lateness
	}
	if cfg.Slide > 1 {
		dcfg.Slide = cfg.Slide
	}
	if cfg.TopK {
		dcfg.Queries = append(dcfg.Queries, approxiot.TopKOf(3), approxiot.QuantileOf(0.5))
	}
	spec := dcfg.Tree
	if spec.Sources == 0 {
		spec = approxiot.Testbed()
	}
	d, err := approxiot.Open(nil, dcfg)
	if err != nil {
		return rep, fmt.Errorf("chaos: open: %w", err)
	}
	defer d.Close()

	leaves := d.EdgeNodeIDs()[:spec.Layers[0].Nodes]
	h := &harness{cfg: cfg, rng: rng, rep: rep, d: d, spec: spec,
		dead: map[string]bool{}, detached: map[string]bool{}}

	for round := 0; round < cfg.Rounds; round++ {
		if round > 0 {
			h.disturb(leaves, round)
		}
		if err := h.pushRound(round); err != nil {
			return rep, err
		}
		time.Sleep(window / 2)
	}

	// Every guarantee is conditioned on eventual recovery: resurrect the
	// still-dead and re-attach the still-detached before the books close.
	for id := range h.dead {
		if err := h.restart(id); err != nil {
			return rep, err
		}
	}
	for node := range h.detached {
		if err := d.AddEdgeNode(node); err != nil {
			return rep, fmt.Errorf("chaos: final AddEdgeNode(%s): %w", node, err)
		}
		rep.Attaches++
	}

	res, err := d.Close()
	if err != nil {
		return rep, fmt.Errorf("chaos: close: %w", err)
	}
	return rep, h.verdict(res)
}

type harness struct {
	cfg  Config
	rng  *xrand.Rand
	rep  *Report
	d    *approxiot.Deployment
	spec approxiot.TreeSpec

	produced int64
	dead     map[string]bool // member ID → killed, not yet restarted
	detached map[string]bool // leaf node ID → detached
	stalled  int             // slot skipped this round, -1 none
	burst    bool            // double items this round
}

func (h *harness) op(format string, a ...any) {
	h.rep.Ops = append(h.rep.Ops, fmt.Sprintf(format, a...))
}

// disturb applies one random operation (or impairment) before a round's
// pushes. Errors that are legal outcomes of the schedule — shrinking to the
// floor, growing past the partition count — are tolerated; everything else
// is a harness failure recorded in the verdict via panic-free error ops.
func (h *harness) disturb(leaves []string, round int) {
	h.stalled, h.burst = -1, false
	node := leaves[h.rng.Intn(len(leaves))]
	kinds := 6
	if h.cfg.EventTime {
		kinds = 7 // jitter rides on pushRound's timestamping
	}
	switch h.rng.Intn(kinds) {
	case 0:
		if _, err := h.d.AddMember(node); err == nil {
			h.rep.Adds++
			h.op("r%d add %s", round, node)
		}
	case 1:
		if _, err := h.d.RemoveMember(node); err == nil {
			h.rep.Removes++
			h.op("r%d remove %s", round, node)
		}
	case 2:
		members, err := h.d.GroupMembers(node)
		if err != nil {
			return
		}
		for _, m := range members {
			if m.State == "live" {
				if err := h.d.KillMember(m.ID); err == nil {
					h.dead[m.ID] = true
					h.rep.Kills++
					h.op("r%d kill %s", round, m.ID)
				}
				return
			}
		}
	case 3:
		for id := range h.dead {
			if err := h.restart(id); err != nil {
				h.op("r%d FAILED %v", round, err)
			} else {
				h.op("r%d restart %s", round, id)
			}
		}
	case 4:
		if len(h.detached) > 0 {
			for n := range h.detached {
				if err := h.d.AddEdgeNode(n); err == nil {
					delete(h.detached, n)
					h.rep.Attaches++
					h.op("r%d attach %s", round, n)
				}
				return
			}
		}
		// Detach only when no member of the leaf is dead (a detach drains
		// live members; the dead one would be stranded unrecoverable).
		for id := range h.dead {
			if lo, _ := h.memberLeaf(id); lo == node {
				return
			}
		}
		if err := h.d.RemoveEdgeNode(node); err == nil {
			h.detached[node] = true
			h.rep.Detaches++
			h.op("r%d detach %s", round, node)
		}
	case 5:
		h.stalled = h.rng.Intn(h.spec.Sources)
		h.rep.Stalls++
		h.op("r%d stall slot %d", round, h.stalled)
	case 6:
		h.burst = true
		h.rep.Bursts++
		h.op("r%d burst", round)
	}
}

// memberLeaf maps a member ID back to its node ID prefix ("edge1-2-shard1"
// → "edge1-2"; shard-0 members are the node ID itself).
func (h *harness) memberLeaf(memberID string) (string, bool) {
	for i := len(memberID) - 1; i > 0; i-- {
		if memberID[i-1] == '-' && memberID[i] == 's' { // "-shardN" suffix
			return memberID[:i-1], true
		}
	}
	return memberID, false
}

func (h *harness) restart(id string) error {
	start := time.Now()
	if err := h.d.RestartMember(id); err != nil {
		return fmt.Errorf("chaos: RestartMember(%s): %w", id, err)
	}
	if took := time.Since(start); took > h.rep.MaxRecovery {
		h.rep.MaxRecovery = took
	}
	delete(h.dead, id)
	h.rep.Restarts++
	return nil
}

// pushRound feeds every (non-stalled, attached) slot its quota. Event-time
// runs stamp timestamps advancing eventSpan per round with bounded random
// disorder; detached slots are skipped via the topology's SourceRange
// inverse mapping rather than by provoking ErrNodeDetached.
func (h *harness) pushRound(round int) error {
	n := h.cfg.PerSlot
	if h.burst {
		n *= 2
	}
	skip := make(map[int]bool)
	for node := range h.detached {
		for i := 0; i < h.spec.Layers[0].Nodes; i++ {
			if h.leafID(i) == node {
				lo, hi := h.spec.SourceRange(i)
				for s := lo; s < hi; s++ {
					skip[s] = true
				}
			}
		}
	}
	base := epoch.Add(time.Duration(round) * eventSpan)
	step := eventSpan / time.Duration(n)
	for slot := 0; slot < h.spec.Sources; slot++ {
		if slot == h.stalled || skip[slot] {
			continue
		}
		ing, err := h.d.Ingester(slot)
		if err != nil {
			return fmt.Errorf("chaos: Ingester(%d): %w", slot, err)
		}
		items := make([]approxiot.Item, n)
		for i := range items {
			items[i] = approxiot.Item{Value: h.rng.Normal(100, 15)}
			if h.cfg.EventTime {
				ts := base.Add(time.Duration(i) * step)
				// Disorder: pull some records back, never past lateness.
				if h.rng.Bernoulli(0.2) {
					ts = ts.Add(-time.Duration(h.rng.Int63n(int64(lateness / 2))))
				}
				items[i].Ts = ts
			}
		}
		if err := ing.Push(items...); err != nil {
			return fmt.Errorf("chaos: Push(slot %d): %w", slot, err)
		}
		h.produced += int64(n)
	}
	return nil
}

// leafID reconstructs layer-0 node i's ID from the deployment's listing.
func (h *harness) leafID(i int) string { return h.d.EdgeNodeIDs()[i] }

// verdict checks every guarantee against the final result.
func (h *harness) verdict(res *approxiot.LiveResult) error {
	h.rep.Produced = res.Produced
	h.rep.Estimated = res.EstimateCount
	h.rep.LateDroppedInput = res.LateDroppedInput
	h.rep.Windows = len(res.Windows)
	h.rep.Throughput = res.Throughput

	if res.Produced != h.produced {
		return fmt.Errorf("chaos: produced %d, pushed %d — items lost before the sources", res.Produced, h.produced)
	}
	got, want := res.EstimateCount+res.LateDroppedInput, float64(res.Produced)
	if math.Abs(got-want) > 1e-9*math.Max(math.Abs(got), want) {
		return fmt.Errorf("chaos: count invariant broken: Σestimated %.3f + lateInput %.3f = %.3f, produced %d (seed %d, ops %v)",
			res.EstimateCount, res.LateDroppedInput, got, res.Produced, h.cfg.Seed, h.rep.Ops)
	}
	for i, w := range res.Windows {
		for _, r := range w.Results {
			if !finite(r.Estimate.Value) || !finite(r.Bound()) {
				return fmt.Errorf("chaos: window %d %v: non-finite estimate %v ± %v (seed %d)",
					i, r.Kind, r.Estimate.Value, r.Bound(), h.cfg.Seed)
			}
			for _, g := range r.Groups {
				if !finite(g.Sum.Value) || !finite(g.Sum.Bound(r.Confidence)) || !finite(g.Count) {
					return fmt.Errorf("chaos: window %d %v group %q: non-finite estimate %v ± %v, count %v (seed %d)",
						i, r.Kind, g.Source, g.Sum.Value, g.Sum.Bound(r.Confidence), g.Count, h.cfg.Seed)
				}
			}
			if q := r.Quantile; q != nil {
				if !finite(q.Value) || !finite(q.Lo) || !finite(q.Hi) || q.Lo > q.Hi {
					return fmt.Errorf("chaos: window %d %v: bad quantile interval %v [%v, %v] (seed %d)",
						i, r.Kind, q.Value, q.Lo, q.Hi, h.cfg.Seed)
				}
			}
		}
	}
	if err := h.checkSliding(res.Windows); err != nil {
		return err
	}
	if len(h.dead) != 0 {
		return fmt.Errorf("chaos: members never recovered: %v", h.dead)
	}
	return nil
}

// checkSliding replays the pane-composition rule over the emitted windows:
// every sliding estimate must equal — in value AND variance — the sum of the
// last Panes tumbling pane estimates, gap-filled zeros included, no matter
// what crashes and rescales the schedule threw at the run.
func (h *harness) checkSliding(windows []approxiot.WindowResult) error {
	slide := h.cfg.Slide
	if slide < 2 {
		return nil
	}
	hist := make(map[approxiot.QueryKind][]stats.Estimate)
	var lastStart int64
	seen := false
	for i, w := range windows {
		if len(w.Sliding) == 0 {
			return fmt.Errorf("chaos: window %d carries no sliding results with slide %d (seed %d)",
				i, slide, h.cfg.Seed)
		}
		gap := 0
		if winDur := w.End.Sub(w.Start); !w.Start.IsZero() && winDur > 0 {
			if seen {
				gap = int((w.Start.UnixNano()-lastStart)/int64(winDur)) - 1
				if gap > slide {
					gap = slide
				}
			}
			lastStart, seen = w.Start.UnixNano(), true
		}
		for _, s := range w.Sliding {
			if !finite(s.Estimate.Value) || !finite(s.Bound()) {
				return fmt.Errorf("chaos: window %d sliding %v: non-finite %v ± %v (seed %d)",
					i, s.Kind, s.Estimate.Value, s.Bound(), h.cfg.Seed)
			}
			for g := 0; g < gap; g++ {
				hist[s.Kind] = append(hist[s.Kind], stats.Estimate{})
			}
			hist[s.Kind] = append(hist[s.Kind], w.Result(s.Kind).Estimate)
			panes := hist[s.Kind]
			if s.Panes > len(panes) {
				return fmt.Errorf("chaos: window %d sliding %v composes %d panes, only %d emitted (seed %d)",
					i, s.Kind, s.Panes, len(panes), h.cfg.Seed)
			}
			var wantV, wantVar float64
			for _, p := range panes[len(panes)-s.Panes:] {
				wantV += p.Value
				wantVar += p.Variance
			}
			if !relClose(s.Estimate.Value, wantV) || !relClose(s.Estimate.Variance, wantVar) {
				return fmt.Errorf("chaos: window %d sliding %v: %v (var %v) != pane recompute %v (var %v) over %d panes (seed %d, ops %v)",
					i, s.Kind, s.Estimate.Value, s.Estimate.Variance, wantV, wantVar, s.Panes, h.cfg.Seed, h.rep.Ops)
			}
		}
	}
	return nil
}

func relClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
