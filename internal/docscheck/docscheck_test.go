// Package docscheck keeps the repository's markdown honest: every relative
// link in every *.md file must point at a file or directory that exists,
// and every repo-relative path quoted in a code span must too.
// It runs as a plain test, so doc rot fails tier-1 and the CI docs job
// alike — no external link-checker dependency needed.
package docscheck

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target) links. Images ([![..]](..)) and reference
// definitions are close enough in shape to be caught by the same pattern.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// repoRoot walks up from the test's working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func TestMarkdownLinks(t *testing.T) {
	root := repoRoot(t)
	var mdFiles []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Only the repo's own documentation: skip VCS internals.
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
	if len(mdFiles) < 5 {
		t.Fatalf("found only %d markdown files under %s — walk misconfigured?", len(mdFiles), root)
	}

	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatalf("read %s: %v", md, err)
		}
		rel, _ := filepath.Rel(root, md)
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue // external or intra-document: not a file claim
			}
			// Strip an anchor suffix; the file half must still exist.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", rel, m[1], resolved)
			}
		}
	}
}

// codeSpan matches single-backtick inline code with no spaces — the shape a
// quoted file path takes in prose.
var codeSpan = regexp.MustCompile("`([^`\\s]+)`")

// pathRoots are the repo directories a code-span path claim may start
// with. A span like `internal/ops` is a claim that the path exists; spans
// starting anywhere else (`approxiot.Open`, `/metrics`, `go test`) are not
// path claims and are ignored.
var pathRoots = []string{"internal/", "examples/", "cmd/", "docs/", "scripts/", ".github/"}

// TestMarkdownPathClaims verifies that repo-relative paths quoted in
// markdown code spans exist — the rot class where prose cites
// `internal/foo` or an exemplar directory long after it was renamed or
// never existed in this checkout. Only paths under the known repo roots
// are checked, always against the repository root (unlike links, which
// resolve against the referencing file). `:line` and `/...` suffixes are
// stripped first.
func TestMarkdownPathClaims(t *testing.T) {
	root := repoRoot(t)
	var mdFiles []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}

	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatalf("read %s: %v", md, err)
		}
		rel, _ := filepath.Rel(root, md)
		for _, m := range codeSpan.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			claimed := false
			for _, prefix := range pathRoots {
				if strings.HasPrefix(target, prefix) {
					claimed = true
					break
				}
			}
			if !claimed {
				continue
			}
			// `pkg/file.go:123` cites a line, `pkg/...` a subtree — the
			// path half must still exist.
			if i := strings.IndexByte(target, ':'); i >= 0 {
				target = target[:i]
			}
			target = strings.TrimSuffix(target, "/...")
			target = strings.TrimSuffix(target, "/")
			if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(target))); err != nil {
				t.Errorf("%s: code span cites %q but %s does not exist in the repo", rel, m[1], target)
			}
		}
	}
}
