package approxiot

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync"

	"github.com/approxiot/approxiot/internal/core"
	"github.com/approxiot/approxiot/internal/ops"
)

// Deployment is a running live pipeline: the compiled tree instantiated over
// the in-memory broker, accepting pushed items and emitting window results
// until closed. Where Run is batch-shaped — generator-fed, fixed item count,
// blocks until drained — a Deployment is the long-lived handle a production
// edge-analytics service holds: open it once, push readings as they arrive,
// subscribe to results, observe telemetry mid-run, steer the adaptive
// controller, and shut down gracefully.
//
// Obtain one from Open. All methods are safe for concurrent use.
//
// Lifecycle: a Deployment is born ingesting. Close moves it through
// draining (pushes rejected, in-flight windows reach the root) to closed,
// returning the final LiveResult. Cancelling the Open context aborts
// directly to closed: in-flight data is dropped, but every window already
// closed keeps its exact-count estimates, and all goroutines exit. See
// ARCHITECTURE.md for the state diagram and which calls are safe in which
// state.
type Deployment struct {
	s *core.LiveSession

	// Operational surface (ServeOps): guarded by opsMu; opsDone closes
	// when the watcher has torn the server down after the session ends.
	opsMu   sync.Mutex
	opsSrv  *ops.Server
	opsHTTP *http.Server
	opsAddr string
	opsDone chan struct{}
}

// Session-layer types, re-exported. The implementations live in
// internal/core; downstream users interact through these aliases.
type (
	// Ingester is the push valve for one source slot: it stamps, batches,
	// paces (Config.SourceRate), backpressures (Config.MaxIngestLag), and
	// publishes items into the slot's leaf topic. Obtain one per slot from
	// Deployment.Ingester; pushes through one valve are serialized
	// (preserving per-stratum order), distinct slots push concurrently.
	Ingester = core.Ingester
	// Snapshot is a mid-run view of a Deployment's telemetry — counters,
	// latency, bandwidth, per-node throughput, the adaptive fraction —
	// everything the final LiveResult assembles at exit, readable at any
	// moment. All fields are copies; the caller owns them.
	Snapshot = core.LiveSnapshot
	// DeploymentState is one phase of the Deployment lifecycle:
	// ingesting → draining → closed.
	DeploymentState = core.SessionState
)

// Deployment lifecycle states, in order.
const (
	// StateIngesting accepts pushes; windows close on the ticker.
	StateIngesting = core.StateIngesting
	// StateDraining rejects pushes while in-flight windows reach the root.
	StateDraining = core.StateDraining
	// StateClosed is terminal; the final LiveResult is available.
	StateClosed = core.StateClosed
)

// Session lifecycle errors, re-exported for errors.Is tests.
var (
	// ErrClosed rejects operations on a Deployment that has finished
	// (Close completed or the context was cancelled).
	ErrClosed = core.ErrSessionClosed
	// ErrDraining rejects pushes that arrive after Close started draining.
	ErrDraining = core.ErrSessionDraining
	// ErrNotAdaptive rejects SetTarget on a Deployment opened without
	// Config.Adaptive.
	ErrNotAdaptive = core.ErrNotAdaptive
	// ErrBadSourceSlot rejects an Ingester request for a slot outside
	// [0, sources).
	ErrBadSourceSlot = core.ErrBadSourceSlot
)

// Open starts the configured pipeline live and returns the long-lived
// Deployment handle immediately: the compiled tree is pumping, but no items
// flow until the caller pushes them (Ingest, or an Ingester valve per
// source slot). Results stream out of Windows as the root closes them;
// Close drains and returns the final LiveResult; cancelling ctx aborts
// without draining. Open is the session-shaped entry point behind Run —
// Run is exactly Open + generator-fed ingestion + Close.
//
// A nil ctx behaves like context.Background().
func Open(ctx context.Context, cfg Config) (*Deployment, error) {
	cfg = cfg.normalize()
	s, err := core.OpenLive(ctx, core.LiveConfig{
		Spec:            cfg.Tree,
		NewSampler:      cfg.samplerFactory(),
		Cost:            cfg.cost(),
		Window:          cfg.Window,
		Queries:         cfg.Queries,
		Slide:           cfg.Slide,
		Confidence:      cfg.Confidence,
		Partitions:      cfg.Partitions,
		RootShards:      cfg.RootShards,
		LayerShards:     cfg.layerShards(),
		Seed:            cfg.Seed,
		Feedback:        cfg.Adaptive,
		SourceRate:      cfg.SourceRate,
		MaxIngestLag:    cfg.MaxIngestLag,
		DrainTimeout:    cfg.DrainTimeout,
		OnWindow:        cfg.OnWindow,
		Streaming:       cfg.streaming(),
		EventTime:       cfg.EventTime,
		AllowedLateness: cfg.AllowedLateness,
		IdleTimeout:     cfg.IdleTimeout,
		Checkpoint:      cfg.Checkpoint,
	})
	if err != nil {
		return nil, err
	}
	d := &Deployment{s: s}
	if cfg.OpsAddr != "" {
		if _, err := d.ServeOps(cfg.OpsAddr); err != nil {
			_, _ = d.Close()
			return nil, err
		}
	}
	return d, nil
}

// Ingest publishes items onto sub-stream src: every item's Source is set to
// src, the batch is stamped with its wall-clock publish instant (end-to-end
// latency is measured from here; with Config.EventTime a caller-supplied
// Item.Ts is preserved as the event timestamp, a zero Ts defaults to the
// publish instant), and src hashes to a stable source slot so one stratum
// always enters the tree at the same leaf, preserving per-stratum
// ordering. Subject to SourceRate pacing and MaxIngestLag backpressure.
// Returns ErrDraining / ErrClosed once the Deployment has left the
// ingesting state.
func (d *Deployment) Ingest(src SourceID, items ...Item) error {
	return d.s.Ingest(src, items...)
}

// Ingester returns the push valve for one source slot (0 ≤ slot < the
// tree's source count) — the live analogue of "IoT source number slot".
// The valve is cached: every call for the same slot returns the same
// *Ingester.
func (d *Deployment) Ingester(slot int) (*Ingester, error) {
	return d.s.Ingester(slot)
}

// Windows returns a streaming subscription to window results: every
// WindowResult the root closes from now on is delivered in order, and the
// channel is closed when the Deployment closes. A subscriber that falls
// more than a buffer behind misses intermediate results (every window
// remains in the final LiveResult.Windows) — the window ticker never
// blocks on a slow reader.
func (d *Deployment) Windows() <-chan WindowResult { return d.s.Windows() }

// Snapshot captures the Deployment's telemetry mid-run: counters, latency,
// bandwidth, per-node throughput, and the adaptive fraction, all safe to
// read while the pipeline keeps processing.
func (d *Deployment) Snapshot() Snapshot { return d.s.Snapshot() }

// SetTarget retunes the adaptive controller's relative-error target mid-run;
// the change takes effect at the next window close. Returns ErrNotAdaptive
// when the Deployment was opened without Config.Adaptive.
func (d *Deployment) SetTarget(target float64) error { return d.s.SetTarget(target) }

// Target returns the adaptive controller's current relative-error target
// (0 when the Deployment is not adaptive).
func (d *Deployment) Target() float64 { return d.s.Target() }

// State returns the Deployment's lifecycle phase.
func (d *Deployment) State() DeploymentState { return d.s.State() }

// Done is closed when the Deployment reaches the closed state — by Close
// or by context cancellation.
func (d *Deployment) Done() <-chan struct{} { return d.s.Done() }

// Err returns the error the Deployment closed with: nil after a clean
// Close, the context's error after cancellation, nil while still running.
func (d *Deployment) Err() error { return d.s.Err() }

// ErrOpsServing rejects a second ServeOps on the same Deployment.
var ErrOpsServing = errors.New("approxiot: ops surface already serving")

// ServeOps starts the Deployment's operational HTTP surface on addr
// ("127.0.0.1:9377", or ":0" for an ephemeral port) and returns the bound
// address. The surface serves:
//
//	/health         per-component health as JSON (200 while serviceable,
//	                503 once a component fails)
//	/metrics        Prometheus text exposition of the Snapshot counters,
//	                gauges, per-topic bandwidth, per-node telemetry, and
//	                the end-to-end latency histogram
//	/metrics/query  sar-style windowed rates over sampled history
//	                (?window=5m&lookback=2h, lookback clamped to retention)
//
// A background sampler polls Snapshot once a second into a fixed-capacity
// ring (two hours of retention), so the query endpoint works without any
// external scraper and memory stays bounded. Everything is read-only and
// off the hot path. The surface shuts down automatically when the
// Deployment closes. Config.OpsAddr calls this from Open; call it directly
// to attach the surface to an already-open Deployment. At most one surface
// per Deployment (ErrOpsServing otherwise); ErrClosed after close.
func (d *Deployment) ServeOps(addr string) (string, error) {
	d.opsMu.Lock()
	defer d.opsMu.Unlock()
	if d.opsSrv != nil {
		return "", ErrOpsServing
	}
	if d.s.State() == core.StateClosed {
		return "", ErrClosed
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := ops.NewServer(d.s, ops.Config{})
	httpSrv := &http.Server{Handler: srv.Handler()}
	d.opsSrv = srv
	d.opsHTTP = httpSrv
	d.opsAddr = ln.Addr().String()
	d.opsDone = make(chan struct{})
	srv.Start()
	go func() { _ = httpSrv.Serve(ln) }()
	go func(done chan struct{}) {
		<-d.s.Done()
		srv.Stop()
		_ = httpSrv.Close()
		close(done)
	}(d.opsDone)
	return d.opsAddr, nil
}

// OpsAddr returns the operational surface's bound address, or "" when
// ServeOps has not run.
func (d *Deployment) OpsAddr() string {
	d.opsMu.Lock()
	defer d.opsMu.Unlock()
	return d.opsAddr
}

// waitOps blocks until the ops surface (if any) has shut down.
func (d *Deployment) waitOps() {
	d.opsMu.Lock()
	done := d.opsDone
	d.opsMu.Unlock()
	if done != nil {
		<-done
	}
}

// Close drains the Deployment and returns the final merged LiveResult:
// pushes are rejected from the moment Close is called, in-flight windows
// reach the root, the final partial window is closed, and every goroutine
// exits. Close is idempotent — every call returns the same result — and
// safe to call after context cancellation, in which case it reports the
// context's error alongside the result assembled at abort time.
// If an ops surface is serving (ServeOps / Config.OpsAddr), Close also
// waits for it to shut down, so the listener is released by the time Close
// returns.
func (d *Deployment) Close() (*LiveResult, error) {
	res, err := d.s.Close()
	d.waitOps()
	return res, err
}
