package approxiot

import (
	"github.com/approxiot/approxiot/internal/checkpoint"
	"github.com/approxiot/approxiot/internal/core"
)

// Elastic-topology types, re-exported. A live Deployment is elastic: edge
// consumer groups grow and shrink member by member (AddMember /
// RemoveMember), whole leaf subtrees detach and re-attach (RemoveEdgeNode /
// AddEdgeNode), and with Config.Checkpoint set, a crashed member restarts
// from its last checkpoint without double-counting or losing committed
// input (KillMember / RestartMember — the former standing in for a real
// crash in tests and drills).
type (
	// CheckpointStore persists opaque per-member recovery blobs. Two
	// backends ship with the package: NewMemoryCheckpointStore (same
	// process restarts) and NewFileCheckpointStore (durable across
	// processes, CRC-verified). Custom implementations must be safe for
	// concurrent use.
	CheckpointStore = checkpoint.Store
	// MemberState describes one consumer-group member for introspection:
	// its ID, shard index, and lifecycle state ("live", "killed",
	// "removed").
	MemberState = core.MemberState
)

// NewMemoryCheckpointStore returns an in-process checkpoint backend: the
// right choice when a member restart means a new goroutine in the same
// process, as in tests and single-binary deployments.
func NewMemoryCheckpointStore() CheckpointStore { return checkpoint.NewMemoryStore() }

// NewFileCheckpointStore returns a file-backed checkpoint backend rooted at
// dir (created if absent): one CRC-framed file per member, written
// atomically, surviving process restarts.
func NewFileCheckpointStore(dir string) (CheckpointStore, error) {
	return checkpoint.NewFileStore(dir)
}

// Checkpoint-store errors, re-exported for errors.Is tests.
var (
	// ErrCheckpointNotFound reports that no checkpoint exists for the
	// member (a member killed before its first window restarts from its
	// replay origin instead).
	ErrCheckpointNotFound = checkpoint.ErrNotFound
	// ErrCheckpointCorrupt reports that a stored checkpoint failed
	// integrity verification and was not restored — the member stays
	// restartable so the operator can repair or delete the blob.
	ErrCheckpointCorrupt = checkpoint.ErrCorrupt
)

// Elastic-operation errors, re-exported for errors.Is tests.
var (
	// ErrUnknownNode rejects an operation on a node ID the tree doesn't
	// contain.
	ErrUnknownNode = core.ErrUnknownNode
	// ErrUnknownMember rejects an operation on a member ID no group owns.
	ErrUnknownMember = core.ErrUnknownMember
	// ErrNotEdgeNode rejects member operations on the root group.
	ErrNotEdgeNode = core.ErrNotEdgeNode
	// ErrNotLeafNode rejects detach/attach on interior edge nodes.
	ErrNotLeafNode = core.ErrNotLeafNode
	// ErrLastMember rejects removing a group's last live member.
	ErrLastMember = core.ErrLastMember
	// ErrNodeDetached rejects pushes to (and re-detaching of) a detached
	// edge node.
	ErrNodeDetached = core.ErrNodeDetached
	// ErrNodeAttached rejects attaching a node that is not detached.
	ErrNodeAttached = core.ErrNodeAttached
	// ErrMemberDead rejects killing or removing a member that is not live.
	ErrMemberDead = core.ErrMemberDead
	// ErrMemberAlive rejects restarting a member that was never killed.
	ErrMemberAlive = core.ErrMemberAlive
	// ErrNoCheckpointStore rejects RestartMember on a Deployment opened
	// without Config.Checkpoint.
	ErrNoCheckpointStore = core.ErrNoCheckpointStore
	// ErrShardsExceedPartitions rejects growing a group beyond
	// Config.Partitions (the extra member would own no partitions).
	ErrShardsExceedPartitions = core.ErrShardsExceedPartitions
)

// EdgeNodeIDs lists the IDs of every edge node, bottom-up in (layer, node)
// order — the handles the elastic operations accept (e.g. "edge1-0").
func (d *Deployment) EdgeNodeIDs() []string { return d.s.EdgeNodeIDs() }

// GroupMembers reports the members of node nodeID's consumer group in join
// order, including killed and retired ones.
func (d *Deployment) GroupMembers(nodeID string) ([]MemberState, error) {
	return d.s.GroupMembers(nodeID)
}

// AddMember grows edge node nodeID's consumer group by one member and
// returns the new member's ID. The broker rebalances the group's partitions
// across the widened membership, the group's sampling budget re-splits at
// the next window boundary, and the new member samples under its own seed
// lineage. Fails with ErrShardsExceedPartitions once the group is as wide
// as Config.Partitions.
func (d *Deployment) AddMember(nodeID string) (string, error) { return d.s.AddMember(nodeID) }

// RemoveMember shrinks edge node nodeID's consumer group by retiring its
// newest live member, returning the retired member's ID: the member drains
// what it owns, its partitions rebalance to the survivors, and the group's
// budget re-splits. The last live member cannot be removed (ErrLastMember) —
// detach the whole node instead.
func (d *Deployment) RemoveMember(nodeID string) (string, error) { return d.s.RemoveMember(nodeID) }

// KillMember simulates a crash of the named member: it is stopped in place
// — no drain, no goodbye — its partitions rebalance to the group's
// survivors, and it becomes restartable. The handle for crash drills and
// recovery tests; RestartMember brings it back.
func (d *Deployment) KillMember(memberID string) error { return d.s.KillMember(memberID) }

// RestartMember resurrects a killed member: it reloads the member's last
// checkpoint (reservoir, watermarks, committed offsets), replays the gap
// between the checkpoint and the kill from the broker's retained log, and
// rejoins the group — without double-counting a record or regressing the
// watermark. Requires Config.Checkpoint (ErrNoCheckpointStore); a corrupt
// checkpoint fails the restart (ErrCheckpointCorrupt) and leaves the member
// restartable.
func (d *Deployment) RestartMember(memberID string) error { return d.s.RestartMember(memberID) }

// RemoveEdgeNode detaches a layer-0 edge node and its source slots from the
// tree: pushes to its slots start failing with ErrNodeDetached, the node
// drains what it has accepted, and its members retire. The rest of the tree
// keeps processing; AddEdgeNode re-attaches the node later.
func (d *Deployment) RemoveEdgeNode(nodeID string) error { return d.s.RemoveEdgeNode(nodeID) }

// AddEdgeNode re-attaches a detached layer-0 edge node with fresh members:
// its source slots accept pushes again and the group's budget re-splits.
func (d *Deployment) AddEdgeNode(nodeID string) error { return d.s.AddEdgeNode(nodeID) }
