// Package approxiot is a from-scratch Go implementation of ApproxIoT
// (Wen et al., ICDCS 2018): approximate stream analytics for edge computing
// built on weighted hierarchical stratified reservoir sampling.
//
// Data from IoT sources flows up a logical tree of edge-computing nodes
// towards a datacenter root. Every node independently samples each
// sub-stream within a time interval and compounds a weight that preserves an
// exact estimate of the original stream volume (the paper's Eq. 8
// invariant), so the root can answer linear queries — SUM, MEAN, COUNT —
// over the thinned stream with rigorous error bounds, at a fraction of the
// bandwidth and compute of exact execution.
//
// Four entry points:
//
//   - Estimator: single-node online use. Feed items, close windows, read
//     estimates with confidence intervals.
//   - Simulate: run a full edge tree on deterministic virtual time with WAN
//     emulation (latency, bandwidth, saturation) — the form the paper's
//     evaluation figures use.
//   - Run: execute the tree live on goroutines chained by an in-memory
//     Kafka-style broker, mirroring the paper's Kafka Streams prototype.
//     Batch-shaped: generator-fed, fixed item count, blocks until drained.
//   - Open: the session-shaped form of Run — a long-lived Deployment
//     handle with push ingestion (Ingest / Ingester valves), streaming
//     window results (Windows), mid-run telemetry (Snapshot), adaptive
//     steering (SetTarget), and graceful shutdown (Close). The deployment
//     shape a continuously running edge-analytics service holds.
//
// The §IV-B adaptive feedback mechanism works in every entry point: a
// FeedbackController re-tunes the sampling fraction window by window to
// hold a target relative error (WithAdaptiveBudget on the Estimator,
// Config.Adaptive for Simulate, Run and Open — live runs broadcast each
// adjustment over a control topic, exactly like the data plane, and a
// Deployment can retune the target mid-run via SetTarget).
//
// See ARCHITECTURE.md for the package map and live-dataflow diagram, the
// examples/ directory for runnable programs, and EXPERIMENTS.md for the
// paper-figure reproductions.
package approxiot

import (
	"fmt"
	"time"

	"github.com/approxiot/approxiot/internal/core"
	"github.com/approxiot/approxiot/internal/query"
	"github.com/approxiot/approxiot/internal/sample"
	"github.com/approxiot/approxiot/internal/stats"
	"github.com/approxiot/approxiot/internal/stream"
	"github.com/approxiot/approxiot/internal/topology"
	"github.com/approxiot/approxiot/internal/workload"
)

// Re-exported data-model types. Downstream users construct and consume these
// through the aliases; the implementations live in internal packages.
type (
	// SourceID identifies a sub-stream (stratum).
	SourceID = stream.SourceID
	// Item is one reading from an IoT source.
	Item = stream.Item
	// Batch is a weighted sample batch exchanged between nodes.
	Batch = stream.Batch

	// TreeSpec declares the logical edge tree (sources, layers, window).
	TreeSpec = topology.TreeSpec
	// LayerSpec declares one layer of the tree.
	LayerSpec = topology.LayerSpec

	// Estimate is a value with its estimated variance.
	Estimate = stats.Estimate
	// Confidence selects the error-bound level (68/95/99.7%).
	Confidence = stats.Confidence

	// QueryKind selects an aggregate: Sum, Mean, Count, or a parameterized
	// kind from TopKOf / QuantileOf.
	QueryKind = query.Kind
	// Result is one approximate answer with its error bound. Top-k answers
	// additionally carry Result.Groups (per-group SUM ± bound); quantile
	// answers carry Result.Quantile (value with rank-interval bounds).
	Result = query.Result
	// WindowResult is a root window's set of answers.
	WindowResult = core.WindowResult
	// SlidingResult is one sliding-window estimate (Config.Slide) composed
	// from tumbling panes, attached to the window that completes it.
	SlidingResult = core.SlidingResult

	// Generator produces workload items interval by interval.
	Generator = workload.Generator
	// Source is anything that yields the items arriving in an interval:
	// a synthetic *Generator or a *Replay of a recorded trace.
	Source = workload.Source
	// Replay feeds a recorded trace through the pipelines.
	Replay = workload.Replay
	// SubstreamSpec configures one generated sub-stream.
	SubstreamSpec = workload.SubstreamSpec

	// SimConfig / SimResult configure and report virtual-time runs.
	SimConfig = core.SimConfig
	// SimResult reports a virtual-time run.
	SimResult = core.SimResult
	// LiveConfig / LiveResult configure and report live runs.
	LiveConfig = core.LiveConfig
	// LiveResult reports a live run.
	LiveResult = core.LiveResult
	// NodeTelemetry is one live node member's lifetime measurement
	// (observed/emitted items, window intervals, throughput), reported on
	// LiveResult.Nodes.
	NodeTelemetry = core.NodeTelemetry

	// FeedbackController adapts the sampling fraction to an error target
	// (§IV-B). It drives the Estimator via WithAdaptiveBudget and full-tree
	// runs — simulated and live — via Config.Adaptive.
	FeedbackController = core.FeedbackController
	// FeedbackOption customizes NewFeedbackController.
	FeedbackOption = core.FeedbackOption
)

// Feedback-controller options, re-exported for NewFeedbackController.
var (
	// WithFractionBounds clamps the adaptive fraction to [min, max]
	// (default [0.01, 1]).
	WithFractionBounds = core.WithFractionBounds
	// WithGain sets the multiplicative adjustment step (default 1.5).
	WithGain = core.WithGain
)

// Query kinds.
const (
	Sum   = query.Sum
	Mean  = query.Mean
	Count = query.Count
)

// TopKOf returns the QueryKind for a per-window group-by top-k query: the k
// sub-streams (strata) with the largest estimated SUM, each carrying its
// Eq. 11 error bound. The window Result's headline Estimate is the combined
// SUM of the top-k groups (strata sample independently, so variances add);
// the ranked groups are on Result.Groups.
func TopKOf(k int) QueryKind { return query.TopKOf(k) }

// QuantileOf returns the QueryKind for a per-window approximate quantile at
// q in (0, 1) (permille resolution): the weighted sample quantile of the
// window's item values, with a confidence interval from the normal
// approximation to the rank distribution. The full answer is on
// Result.Quantile; the headline Estimate mirrors its value with the interval
// half-width as the TwoSigma bound.
func QuantileOf(q float64) QueryKind { return query.QuantileOf(q) }

// Confidence levels under the 68-95-99.7 rule.
const (
	OneSigma   = stats.OneSigma
	TwoSigma   = stats.TwoSigma
	ThreeSigma = stats.ThreeSigma
)

// ControlTopic names the live deployment's single-partition control
// topic — the channel adaptive runs broadcast fraction updates on. Useful
// for looking the control plane up in LiveResult.Bandwidth.
const ControlTopic = core.ControlTopicName

// ErrEventTimeStreaming rejects Config.EventTime combined with a streaming
// strategy (SRS, Native): streaming forwards per batch with no windows to
// assign records to, so event-time windowing has nothing to act on.
var ErrEventTimeStreaming = core.ErrEventTimeStreaming

// ErrDrainTimeout reports that a live Close hit Config.DrainTimeout before
// the pipeline quiesced: the final result was assembled anyway, but
// in-flight items may be missing from it (LiveResult.DrainTimedOut is set).
var ErrDrainTimeout = core.ErrDrainTimeout

// Strategy selects the sampling algorithm a pipeline runs.
type Strategy int

// Available strategies.
const (
	// WHS is weighted hierarchical stratified reservoir sampling — the
	// ApproxIoT algorithm (default).
	WHS Strategy = iota + 1
	// SRS is the simple-random-sampling baseline (per-item coin flip).
	SRS
	// Native disables sampling (exact execution).
	Native
	// ParallelWHS is WHS with per-sub-stream worker parallelism (§III-E).
	ParallelWHS
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case WHS:
		return "ApproxIoT"
	case SRS:
		return "SRS"
	case Native:
		return "Native"
	case ParallelWHS:
		return "ApproxIoT-parallel"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Testbed returns the paper's 8-source / 4-2-1 evaluation tree with its WAN
// parameters (20/40/80 ms RTTs over 1 Gbps links).
func Testbed() TreeSpec { return topology.Testbed() }

// SingleNode returns a degenerate tree where sources feed the root directly.
func SingleNode(sources int) TreeSpec { return topology.SingleNode(sources) }

// Config assembles a pipeline configuration from user-level knobs. Every
// knob applies to both Simulate and Run unless its comment says otherwise.
type Config struct {
	// Tree is the deployment; defaults to Testbed().
	Tree TreeSpec
	// Strategy defaults to WHS.
	Strategy Strategy
	// Fraction is the end-to-end sampling fraction in (0, 1]; default 0.1.
	// When Adaptive is set the controller owns the budget and Fraction no
	// longer sizes it; the SRS baseline's per-item coin-flip is still
	// built from Fraction either way.
	Fraction float64
	// Workers configures ParallelWHS (default 4). Other strategies ignore it.
	Workers int
	// Queries defaults to [Sum]. Beyond the linear kinds, TopKOf(k) ranks
	// strata by estimated SUM and QuantileOf(q) answers rank queries, both
	// with per-window error bounds.
	Queries []QueryKind
	// Slide, when ≥ 2, additionally reports sliding-window estimates
	// composed from the last Slide tumbling panes (pane composition): each
	// WindowResult carries Sliding entries for the additive query kinds
	// (SUM/COUNT) whose values and variances add across panes, so the
	// composed bounds stay rigorous. Applies to both modes; with EventTime
	// the sliding window spans exactly Slide × Tree.Window of event time
	// (skipped empty panes contribute zero).
	Slide int
	// Confidence is the error-bound level of every window result; defaults
	// to TwoSigma (95%) in both modes.
	Confidence Confidence
	// Adaptive, when set, closes the paper's §IV-B feedback loop: the
	// sampling fraction starts at the controller's current fraction and is
	// re-tuned at every root window close to steer the realized relative
	// error bound toward the controller's target. Simulated runs share the
	// controller in memory; live runs broadcast each adjustment over the
	// deployment's control topic, applied by every edge member at its
	// next window boundary (the root, colocated with the controller,
	// updates at the merge). Requires a non-COUNT query to observe.
	// Takes precedence over Fraction for the budget (Fraction still
	// configures the SRS baseline's coin-flip). A controller is stateful —
	// build a fresh one per run.
	Adaptive *FeedbackController
	// SourceRate throttles each live source to at most this many items per
	// second (0 = unthrottled). Adaptive live runs use it to stretch
	// production across enough windows to converge; Open's Ingester valves
	// apply it to pushed streams too. Simulated runs ignore it — their
	// sources are rate-shaped by the workload generators.
	SourceRate float64
	// Window is the live processing-time sampling/query interval (default
	// 50 ms). It paces how often the root closes a window and emits a
	// result — the cadence of a Deployment's Windows subscription.
	// Simulated runs ignore it (the TreeSpec's virtual-time window applies
	// there). With EventTime set it is only the wall-clock sweep cadence —
	// windows are then defined by record timestamps, not by this ticker.
	Window time.Duration
	// EventTime switches both modes from processing-time windows
	// ("whatever is buffered when the ticker fires") to event-time
	// tumbling windows of Tree.Window length: records are assigned to
	// windows by Item.Ts at every layer, per-source low watermarks ride
	// the data path up the tree, and a window closes only when the
	// watermark passes its end plus AllowedLateness. Live pushes keep
	// caller-supplied event timestamps (a zero Ts defaults to the publish
	// instant); WindowResult.Start/End identify each window. Records past
	// the lateness horizon are counted into LiveResult.LateDropped (or
	// SimResult.LateDropped) and dropped — closed windows stay exact.
	// Incompatible with the streaming strategies (SRS, Native).
	EventTime bool
	// AllowedLateness is how far out of order records may arrive and still
	// land in their window: window [s, s+W) closes once the watermark
	// reaches s+W+AllowedLateness. Only meaningful with EventTime.
	AllowedLateness time.Duration
	// IdleTimeout bounds how long a silent sub-stream may hold the
	// watermark back before it is excluded from the minimum (live: wall
	// clock, default 4×Window; simulated: virtual time, default
	// 4×Tree.Window — both raised to AllowedLateness if that is larger, so
	// a source pausing within its promised lateness is never aged out).
	// Negative disables the exclusion; live that requires single-member
	// groups (RootShards and LayerShards of 1). Only meaningful with
	// EventTime.
	IdleTimeout time.Duration
	// MaxIngestLag is the live push-side backpressure high-water mark: an
	// Ingest call blocks while its leaf topic's unconsumed backlog exceeds
	// this many records, so pushers cannot outrun the pipeline into
	// unbounded broker memory. 0 selects the default (8192); negative
	// disables backpressure. Simulated runs ignore it.
	MaxIngestLag int
	// DrainTimeout bounds how long a live Close waits for the pipeline to
	// quiesce before assembling the final result anyway; a wedged drain
	// then surfaces ErrDrainTimeout (and LiveResult.DrainTimedOut) instead
	// of silently returning a result missing in-flight items. 0 selects
	// the default (2 minutes); negative waits forever. Simulated runs
	// ignore it (virtual time cannot wedge).
	DrainTimeout time.Duration
	// Checkpoint, when set, gives every live member a place to persist its
	// recovery state (reservoir contents, watermarks, committed offsets) at
	// each window boundary, enabling Deployment.RestartMember to resurrect
	// a crashed member without double-counting or losing committed input.
	// Two backends ship with the package — NewMemoryCheckpointStore and
	// NewFileCheckpointStore. Saves are best-effort and off the hot path;
	// failures surface on Snapshot.CheckpointErrors. Requires a windowed
	// strategy (WHS / ParallelWHS). Run and Simulate ignore it.
	Checkpoint CheckpointStore
	// OpsAddr, when non-empty, makes Open serve the deployment's
	// operational HTTP surface on this address ("127.0.0.1:9377", or ":0"
	// for an ephemeral port): /health, /metrics (Prometheus text
	// exposition), and /metrics/query windowed history. Equivalent to
	// calling Deployment.ServeOps(OpsAddr) right after Open; the surface
	// shuts down with the Deployment. Run and Simulate ignore it.
	OpsAddr string
	// OnWindow, if set, observes every non-empty window result as it
	// closes, after the feedback step — incremental observation in both
	// modes (live runs additionally offer the Deployment.Windows
	// subscription). It runs on the runner's window-close path: keep it
	// fast, and from a live Deployment never call Close inside it (Close
	// waits for the window ticker, so that deadlocks); Snapshot is safe.
	OnWindow func(WindowResult)
	// Partitions is the partition count of every live mq topic (default 1).
	// Records are keyed by sub-stream, so ordering within a stratum is
	// preserved at any partition count. Simulated runs ignore it.
	Partitions int
	// RootShards sizes the live root consumer group (default 1, clamped to
	// Partitions). Shards aggregate their partitions independently and are
	// merged at window close; the Eq. 8 weights keep the merged count
	// estimate exact at any shard count. Simulated runs ignore it.
	RootShards int
	// LayerShards sizes every interior (edge-layer) node's live consumer
	// group (default 1, clamped to Partitions): each node runs as that
	// many members over its input topic, every member sampling the
	// partitions it owns and forwarding its weighted batches
	// independently. Weight compounding keeps the count estimate exact at
	// any member count, so there is no merge step. Per-layer control is
	// available on core.LiveConfig.LayerShards; this knob applies one
	// count to all edge layers. Simulated runs ignore it.
	LayerShards int
	// Seed makes runs reproducible.
	Seed uint64
}

func (c Config) normalize() Config {
	if c.Tree.Sources == 0 {
		c.Tree = Testbed()
	}
	if c.Strategy == 0 {
		c.Strategy = WHS
	}
	if c.Fraction <= 0 {
		c.Fraction = 0.1
	}
	if c.Fraction > 1 {
		c.Fraction = 1
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if len(c.Queries) == 0 {
		c.Queries = []QueryKind{Sum}
	}
	if c.Confidence == 0 {
		c.Confidence = TwoSigma
	}
	if c.Partitions <= 0 {
		c.Partitions = 1
	}
	if c.RootShards <= 0 {
		c.RootShards = 1
	}
	if c.RootShards > c.Partitions {
		c.RootShards = c.Partitions
	}
	if c.LayerShards <= 0 {
		c.LayerShards = 1
	}
	if c.LayerShards > c.Partitions {
		c.LayerShards = c.Partitions
	}
	return c
}

// layerShards expands the uniform LayerShards knob into the per-edge-layer
// slice core.LiveConfig expects (nil when everything is single-member, or
// when the tree is malformed — core's validation reports that cleanly).
func (c Config) layerShards() []int {
	edgeLayers := c.Tree.RootLayer()
	if c.LayerShards <= 1 || edgeLayers <= 0 {
		return nil
	}
	out := make([]int, edgeLayers)
	for i := range out {
		out[i] = c.LayerShards
	}
	return out
}

func (c Config) samplerFactory() core.SamplerFactory {
	switch c.Strategy {
	case SRS:
		return core.SRSFactory(c.Fraction)
	case Native:
		return core.NativeFactory()
	case ParallelWHS:
		return core.ParallelWHSFactory(c.Workers)
	default:
		return core.WHSFactory()
	}
}

func (c Config) cost() core.CostFunction {
	if c.Strategy == Native {
		return core.FractionBudget{Fraction: 1}
	}
	return core.EffectiveFractionBudget{Fraction: c.Fraction}
}

// streaming reports whether the strategy forwards without edge windows.
func (c Config) streaming() bool { return c.Strategy == SRS || c.Strategy == Native }

// Simulate runs the configured pipeline on deterministic virtual time for
// the given duration: source i's items come from source(i), WAN links use
// the tree's RTT/bandwidth parameters, and every window result is reported.
// With Config.Adaptive set the sampling fraction re-tunes at every window
// close and SimResult.Fractions records the trajectory.
func Simulate(cfg Config, source func(i int) Source, duration time.Duration) (*SimResult, error) {
	cfg = cfg.normalize()
	return core.RunSim(core.SimConfig{
		Spec:            cfg.Tree,
		Source:          source,
		NewSampler:      cfg.samplerFactory(),
		Cost:            cfg.cost(),
		Duration:        duration,
		Queries:         cfg.Queries,
		Slide:           cfg.Slide,
		Confidence:      cfg.Confidence,
		Seed:            cfg.Seed,
		Feedback:        cfg.Adaptive,
		OnWindow:        cfg.OnWindow,
		Streaming:       cfg.streaming(),
		EventTime:       cfg.EventTime,
		AllowedLateness: cfg.AllowedLateness,
		IdleTimeout:     cfg.IdleTimeout,
	})
}

// Run executes the configured pipeline live: every compiled node becomes a
// consumer group of goroutine-backed runtimes chained by an in-memory
// broker, processing `items` items total. The result always carries
// runtime telemetry — end-to-end latency, per-link bytes, per-node
// throughput — and, with Config.Adaptive set, the per-window fraction
// trajectory driven over the deployment's control topic.
//
// Run is the batch-shaped compatibility form of Open: it opens a
// Deployment, feeds `items` generator items through the same Ingester
// valves external pushers use, and closes. Long-lived services that push
// their own data should hold a Deployment instead.
func Run(cfg Config, source func(i int) Source, items int64) (*LiveResult, error) {
	cfg = cfg.normalize()
	return core.RunLive(core.LiveConfig{
		Spec:            cfg.Tree,
		Source:          source,
		NewSampler:      cfg.samplerFactory(),
		Cost:            cfg.cost(),
		Items:           items,
		Window:          cfg.Window,
		Queries:         cfg.Queries,
		Slide:           cfg.Slide,
		Confidence:      cfg.Confidence,
		Partitions:      cfg.Partitions,
		RootShards:      cfg.RootShards,
		LayerShards:     cfg.layerShards(),
		Seed:            cfg.Seed,
		Feedback:        cfg.Adaptive,
		SourceRate:      cfg.SourceRate,
		MaxIngestLag:    cfg.MaxIngestLag,
		DrainTimeout:    cfg.DrainTimeout,
		OnWindow:        cfg.OnWindow,
		Streaming:       cfg.streaming(),
		EventTime:       cfg.EventTime,
		AllowedLateness: cfg.AllowedLateness,
		IdleTimeout:     cfg.IdleTimeout,
	})
}

// NewGenerator builds a workload generator over explicit sub-stream specs.
func NewGenerator(seed uint64, specs ...SubstreamSpec) *Generator {
	return workload.New(seed, specs...)
}

// NewFeedbackController returns the §IV-B adaptive controller: a
// multiplicative-increase/decrease loop (default gain 1.5, fraction bounds
// [0.01, 1] — see WithGain and WithFractionBounds) whose fraction moves
// toward the target relative error as window results are observed.
//
// Three installation points, one per entry point: WithAdaptiveBudget on an
// Estimator (caller feeds results back via Observe), or Config.Adaptive
// for Simulate and Run (the runners observe every root window themselves —
// live, the adjustment travels the deployment's control topic). The
// controller is stateful; build a fresh one per run.
func NewFeedbackController(initialFraction, targetRelError float64, opts ...FeedbackOption) *FeedbackController {
	return core.NewFeedbackController(initialFraction, targetRelError, opts...)
}

// Compile-time facade checks.
var (
	_ = sample.Sampler(sample.Passthrough{})
	_ = core.CostFunction(core.FixedBudget{})
)
